// Package manager implements the on-line resource manager the paper's
// setting presumes (§1.3: "the spatial mapping is performed always when a
// new streaming application is started"): applications arrive and leave at
// run time, each arrival is mapped against the platform's actual residual
// resources, admitted if a feasible mapping exists, and holds its
// reservations until it stops. This is the component a deployment would
// run on the control processor; the examples and experiment E12 exercise
// it.
//
// Admission is a concurrent pipeline. The expensive part of an admission —
// the four-step spatial mapping — runs outside all platform locks, against
// a point-in-time Snapshot of the platform's residual state, so many
// arrivals can be mapped in parallel. Only the commit takes locks, and
// only the locks of the mesh regions the mapping's reservation plan
// touches (core.Plan.Regions, acquired in canonical order): it
// re-validates the plan against the live platform and, when a competing
// admission claimed the resources since the snapshot was taken,
// re-snapshots and repairs or re-maps — optimistic concurrency with
// bounded retries. On a partitioned platform (arch.PartitionRegions),
// admissions whose plans land in disjoint regions therefore commit fully
// in parallel; the unpartitioned single-region platform degenerates to
// the classic one-global-lock commit. Use Pipeline for a bounded work
// queue feeding N admission workers.
package manager

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/journal"
	"rtsm/internal/model"
)

// DefaultMaxRetries bounds how many times one admission re-maps after a
// commit conflict or a stale infeasible verdict before giving up.
const DefaultMaxRetries = 3

// Admission records one running application.
type Admission struct {
	App    *model.Application
	Result *core.Result
	// Seq is the admission order, for deterministic reporting.
	Seq int
	// Priority is the admission's QoS class, fixed at admission time from
	// the application's spec. It decides who may preempt whom: a full-mesh
	// arrival of a higher class may displace this admission.
	Priority model.Priority

	// lib is the implementation library the application was admitted
	// with, kept so a preempted admission can be relocated (re-placed)
	// without the original caller's involvement.
	lib *model.Library

	// loadUtilMilli and loadEnergyMilli cache the admission's
	// contribution to the manager's LoadEstimate, set by loadCharge at
	// commit so loadRelease subtracts exactly what was added.
	loadUtilMilli   int64
	loadEnergyMilli int64

	// plan is the reservation plan of a replay-rebuilt resident, whose
	// Result (and lib) did not survive the crash: journaled deltas are
	// all that is known about it. Stop and the fault evacuation release
	// this plan verbatim; live admissions leave it nil and derive their
	// removal plan from Result on demand.
	plan *core.Plan
}

// Library returns the implementation library the application was admitted
// with, so a fleet rebalancer can re-admit the application on a sibling
// mesh without the original caller's involvement.
func (a *Admission) Library() *model.Library { return a.lib }

// RejectionError reports why an application was not admitted.
type RejectionError struct {
	App    string
	Reason string
	// Retryable distinguishes capacity verdicts from structural ones. A
	// retryable rejection means this mesh is out of room (no feasible
	// mapping at current occupancy, commit retries exhausted under
	// contention) — the identical application could well be admitted by a
	// sibling mesh or by this one later. Non-retryable rejections are
	// properties of the application itself (unknown pinned tiles, no
	// implementations for a process) and will fail identically
	// everywhere, so spilling them across a fleet is wasted work.
	Retryable bool
}

// Error renders the rejection with the application name and reason.
func (e *RejectionError) Error() string {
	return fmt.Sprintf("manager: %q rejected: %s", e.App, e.Reason)
}

// IsRetryableRejection reports whether err is a rejection that another
// mesh (or a later attempt) could plausibly admit. The fleet router's
// spill path keys off this: capacity rejections overflow to the next-best
// sibling, structural ones reject immediately.
func IsRetryableRejection(err error) bool {
	var rej *RejectionError
	return errors.As(err, &rej) && rej.Retryable
}

// Outcome is the full per-admission report of one Admit call: how it
// ended, how many mapping rounds it took and where the time went.
type Outcome struct {
	App string
	// Admitted is true when the application now holds reservations.
	Admitted bool
	// Attempts counts mapping rounds: 1 for a clean admission, more when
	// commit conflicts or stale snapshots forced a re-map.
	Attempts int
	// Wait is the time spent queued before a pipeline worker picked the
	// request up (zero for direct Admit/Start calls).
	Wait time.Duration
	// Map is the total time spent in full four-step mapping, outside the
	// platform lock, summed over attempts.
	Map time.Duration
	// Repair is the total time spent in incremental repair of stale
	// mappings, also outside the platform lock.
	Repair time.Duration
	// Commit is the total time spent in the serialized commit section.
	Commit time.Duration
	// Repaired is true when the committed mapping came from core.Repair
	// rather than a full four-step map.
	Repaired bool
	// Priority is the admission's QoS class (from the application's spec,
	// clamped to the valid range).
	Priority model.Priority
	// Preempted lists the names of lower-priority victims this admission
	// displaced to get in — each was relocated when possible and evicted
	// otherwise (see Stats.Relocations/Evictions for the split). Empty
	// for ordinary admissions.
	Preempted []string
	// Admission is the resulting reservation record, nil unless admitted.
	Admission *Admission
	// Err is nil when admitted and a *RejectionError (or duplicate-name
	// error) otherwise.
	Err error
}

// Stats aggregates admission outcomes over the manager's lifetime.
type Stats struct {
	Admitted uint64
	Rejected uint64
	// Conflicts counts commit attempts that found the platform changed in
	// a way that invalidated the speculative mapping.
	Conflicts uint64
	// Retries counts extra mapping rounds run because of conflicts or
	// stale snapshots (Attempts beyond the first, summed over arrivals).
	Retries uint64
	// TemplateHits counts admissions committed from a reused mapping
	// template without running the mapper (see SetMappingReuse).
	TemplateHits uint64
	// StaleTemplates counts template instantiations where a pool existed
	// but no remembered placement fit the live platform.
	StaleTemplates uint64
	// ConflictRetries counts mapping rounds re-entered after a commit
	// conflict (the retried subset of Conflicts).
	ConflictRetries uint64
	// RepairedConflicts and RepairedTemplates count conflict-retry and
	// stale-template rounds resolved by core.Repair: the round's mapping
	// came from refitting the stale one, no full four-step remap ran.
	// (Whether the commit then wins its own race is a separate event; a
	// lost commit shows up as a further ConflictRetries round.) Together
	// with FullRemaps they partition ConflictRetries + StaleTemplates.
	RepairedConflicts uint64
	RepairedTemplates uint64
	// RepairAttempts counts core.Repair invocations, successful or not.
	RepairAttempts uint64
	// FullRemaps counts conflict-retry and stale-template rounds that fell
	// back to the full four-step map (repair disabled, refused or
	// infeasible).
	FullRemaps uint64
	// Snapshots counts base snapshots actually captured for admissions
	// and their retries; SnapshotsShared counts admissions served from an
	// already-captured epoch snapshot instead of taking their own (see
	// SetEpochSnapshots). Their sum is the number of snapshot
	// acquisitions the admission path performed.
	Snapshots       uint64
	SnapshotsShared uint64
	// CoWFaults counts regions faulted in by the copy-on-write engine —
	// private region copies made on first write, on the live platform
	// and on every snapshot and working clone derived from it. With
	// copy-on-write disabled it stays zero.
	CoWFaults uint64
	// Preemptions counts lower-priority victims displaced so a
	// higher-priority arrival could be admitted on a full mesh. Every
	// preempted victim ends up in exactly one of Relocations (kept
	// running on a repaired placement, the preferred outcome) or
	// Evictions (released for good because no relocation fit).
	Preemptions uint64
	// Relocations counts preempted victims kept running: their stale
	// mapping was refit via core.Relocate against the post-eviction
	// residual and recommitted.
	Relocations uint64
	// Evictions counts preempted victims that could not be relocated and
	// lost their reservations.
	Evictions uint64
	// Batches counts batched admission rounds that reached the merged
	// multi-application commit with at least two mergeable plans.
	// BatchedAdmissions counts admissions committed inside such a merged
	// commit. BatchSpills counts arrivals that could not join the merged
	// commit (footprint overlap inside the batch, failed merged
	// validation) but whose speculative plan still committed per-item
	// against the live platform — the cheap exit. BatchFallbacks counts
	// arrivals drained into a batch that re-entered the full per-item
	// path instead: no speculative plan (infeasible against the shared
	// base, structural error) or a spill whose plan no longer fit. With
	// batching off all four stay zero.
	Batches           uint64
	BatchedAdmissions uint64
	BatchSpills       uint64
	BatchFallbacks    uint64
	// FaultsInjected counts FailTile/FailLink calls that failed a live
	// resource; Restores counts resources returned to service. Every
	// resident evacuated off a failed resource ends up in exactly one of
	// FaultRelocated (kept running on a refit placement) or FaultDropped
	// (no relocation fit; its reservations are gone).
	FaultsInjected uint64
	FaultRelocated uint64
	FaultDropped   uint64
	Restores       uint64
	// DLQRecovered counts capacity-rejected arrivals a dead-letter queue
	// re-enqueued and successfully admitted once utilization dropped;
	// DLQExpired counts entries the DLQ gave up on (retry budget spent or
	// shutdown). Both are reported by the streaming front-end via
	// NoteDLQRecovered/NoteDLQExpired; without a DLQ they stay zero.
	DLQRecovered uint64
	DLQExpired   uint64
	// ByClass splits admitted/rejected per priority class, indexed by
	// model.Priority.
	ByClass [model.NumPriorities]ClassStats
	// Wait, Map, Repair and Commit accumulate the respective Outcome
	// durations.
	Wait   time.Duration
	Map    time.Duration
	Repair time.Duration
	Commit time.Duration
}

// ClassStats is the per-priority-class share of the admission counters.
type ClassStats struct {
	Admitted uint64
	Rejected uint64
	// Shed counts arrivals this class lost to load shedding before any
	// mapping ran: TrySubmit refusals on a saturated queue plus drops the
	// streaming front-end reports via NoteShed. Shed arrivals never reach
	// the mapper, so they appear in neither Admitted nor Rejected — the
	// ledger for a class is Admitted + Rejected + Shed.
	Shed uint64
	// Latency accumulates the class's end-to-end admission latency
	// (queue wait + mapping + repair + commit) over all its arrivals,
	// admitted and rejected; divide by their count for the mean.
	Latency time.Duration
}

// AdmissionRate reports the fraction of the class's arrivals that were
// admitted; the second value is false when the class saw no arrivals.
func (s Stats) AdmissionRate(p model.Priority) (float64, bool) {
	c := s.ByClass[clampPriority(p)]
	total := c.Admitted + c.Rejected
	if total == 0 {
		return 0, false
	}
	return float64(c.Admitted) / float64(total), true
}

// Add accumulates o into s, field by field. Fleet-level reporting uses
// it to sum member-mesh statistics into one aggregate view.
func (s *Stats) Add(o Stats) {
	s.Admitted += o.Admitted
	s.Rejected += o.Rejected
	s.Conflicts += o.Conflicts
	s.Retries += o.Retries
	s.TemplateHits += o.TemplateHits
	s.StaleTemplates += o.StaleTemplates
	s.ConflictRetries += o.ConflictRetries
	s.RepairedConflicts += o.RepairedConflicts
	s.RepairedTemplates += o.RepairedTemplates
	s.RepairAttempts += o.RepairAttempts
	s.FullRemaps += o.FullRemaps
	s.Snapshots += o.Snapshots
	s.SnapshotsShared += o.SnapshotsShared
	s.CoWFaults += o.CoWFaults
	s.Preemptions += o.Preemptions
	s.Relocations += o.Relocations
	s.Evictions += o.Evictions
	s.Batches += o.Batches
	s.BatchedAdmissions += o.BatchedAdmissions
	s.BatchSpills += o.BatchSpills
	s.BatchFallbacks += o.BatchFallbacks
	s.FaultsInjected += o.FaultsInjected
	s.FaultRelocated += o.FaultRelocated
	s.FaultDropped += o.FaultDropped
	s.Restores += o.Restores
	s.DLQRecovered += o.DLQRecovered
	s.DLQExpired += o.DLQExpired
	for c := range s.ByClass {
		s.ByClass[c].Admitted += o.ByClass[c].Admitted
		s.ByClass[c].Rejected += o.ByClass[c].Rejected
		s.ByClass[c].Shed += o.ByClass[c].Shed
		s.ByClass[c].Latency += o.ByClass[c].Latency
	}
	s.Wait += o.Wait
	s.Map += o.Map
	s.Repair += o.Repair
	s.Commit += o.Commit
}

// RepairRate reports the fraction of retry-or-stale rounds resolved by
// incremental repair instead of a full remap; the second value is false
// when no such round happened.
func (s Stats) RepairRate() (float64, bool) {
	denom := s.ConflictRetries + s.StaleTemplates
	if denom == 0 {
		return 0, false
	}
	return float64(s.RepairedConflicts+s.RepairedTemplates) / float64(denom), true
}

// Manager owns a platform and the set of admitted applications. All
// methods are safe for concurrent use.
//
// Three lock families guard the manager's state, acquired in at most the
// order epochMu → mu, and never while holding a region lock:
//
//   - locks, one mutex per mesh region, serialize the platform's
//     reservation state. A commit or release holds exactly the regions
//     its plan touches; whole-platform reads (Residual, Load,
//     CheckInvariants, deep snapshots) hold all of them, while the
//     copy-on-write snapshot capture visits one region lock at a time.
//   - mu serializes the admission bookkeeping: the running and pending
//     sets, the sequence counter, the configuration flags and the
//     statistics.
//   - epochMu serializes the shared epoch snapshot (see epoch.go).
type Manager struct {
	cfg core.Config

	// locks shards the platform's reservation state by region; sized
	// from the platform's partition at construction.
	locks *arch.RegionLocks

	// faults counts copy-on-write region faults platform-wide; the
	// platform and all its snapshots and clones share this meter.
	faults atomic.Uint64

	// epochMu guards the shared epoch snapshot of epoch.go.
	epochMu   sync.Mutex
	epochSnap *arch.Snapshot

	mu      sync.Mutex
	plat    *arch.Platform
	running map[string]*Admission
	pending map[string]struct{}
	// preempting holds admissions claimed by the preemption planner:
	// still reserving resources (until their union-locked release) or
	// mid-relocation, but no longer stoppable — Stop returns
	// ErrRelocating until the victim returns to running or is evicted.
	preempting map[string]*Admission
	seq        int
	stats      Stats
	maxRetries int
	templates  *templateCache // nil = mapping reuse disabled
	repair     bool           // repair stale mappings instead of re-mapping
	preemption bool           // displace lower classes for full-mesh arrivals
	cow        bool           // copy-on-write snapshots instead of deep copies
	epochShare bool           // admissions share epoch snapshots
	epochLag   uint64         // staleness budget of a shared epoch snapshot

	// load is the lock-free utilization summary fleet routers sample;
	// maintained by loadCharge/loadRelease on the commit and stop paths.
	load LoadEstimate

	// jw is the durable admission journal, nil when journaling is off.
	// Wired once by SetJournal before the first admission and read
	// without a lock from every commit path.
	jw *journal.Writer

	// faultBias overrides the mapper's region-bias price when relocating
	// fault victims (0 = inherit cfg.RegionBias); see SetFaultBias.
	faultBias float64
}

// New returns a manager over the given platform. The platform is owned by
// the manager from here on: reservations of admitted applications live on
// it, and all access to it is serialized behind the manager's region
// locks. Partition the platform (arch.PartitionRegions) before handing it
// over — the lock set is sized from RegionCount here, and repartitioning
// a managed platform would break the region↔lock correspondence.
func New(plat *arch.Platform, cfg core.Config) *Manager {
	m := &Manager{
		plat:       plat,
		cfg:        cfg,
		locks:      arch.NewRegionLocks(plat.RegionCount()),
		running:    make(map[string]*Admission),
		pending:    make(map[string]struct{}),
		preempting: make(map[string]*Admission),
		maxRetries: DefaultMaxRetries,
		repair:     true,
		preemption: true,
		cow:        true,
		epochShare: true,
		epochLag:   DefaultEpochLag,
	}
	plat.SetCoWFaultMeter(&m.faults)
	m.initLoadCapacity()
	return m
}

// SetCoWSnapshots selects how the admission path snapshots the platform.
// When on (the default), snapshots are copy-on-write: the capture shares
// the platform's per-tile and per-link reservation structs and the live
// platform faults in private region copies as later commits write — cost
// O(regions) per snapshot plus O(footprint) per commit, instead of a
// deep copy of the whole mesh under every region lock. When off, every
// snapshot is the classic deep copy taken under all region locks (and
// epoch sharing is ineffective, since deep snapshots cannot be shared).
func (m *Manager) SetCoWSnapshots(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cow = on
}

// SetEpochSnapshots enables or disables epoch sharing of copy-on-write
// snapshots: when on (the default, effective only with CoW snapshots),
// concurrent admissions within one epoch map against a single frozen
// base snapshot instead of each capturing their own, and the epoch rolls
// once the live platform has moved more than SetEpochLag commits past
// the base. Commit-time validation catches the staleness sharing
// introduces, exactly as it catches snapshot races.
func (m *Manager) SetEpochSnapshots(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epochShare = on
}

// SetEpochLag sets how many committed reservation changes an epoch
// snapshot may trail the live platform by before a new admission rolls
// the epoch instead of sharing it (0 = share only while nothing
// committed since the capture).
func (m *Manager) SetEpochLag(n uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epochLag = n
}

// SetPreemption enables or disables the preemption planner. When on (the
// default), an arrival of priority above BestEffort that would be
// rejected for lack of resources may displace minimal-cost lower-priority
// admissions: each victim is relocated via core.Relocate when the
// post-eviction residual allows it and evicted otherwise. When off, every
// class competes for free capacity only — the pre-priority behaviour.
func (m *Manager) SetPreemption(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.preemption = on
}

// SetRepair enables or disables the incremental remapping engine. When on
// (the default), a commit conflict or a stale template is repaired —
// core.Repair pins everything that still fits and re-places only the
// conflicting processes — and the full four-step map runs only when repair
// refuses or comes back infeasible. When off, every retry re-maps from
// scratch, the pre-repair behaviour.
func (m *Manager) SetRepair(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.repair = on
}

// SetMaxRetries bounds the optimistic-concurrency retry loop (0 disables
// retrying: one mapping round per arrival).
func (m *Manager) SetMaxRetries(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.maxRetries = n
}

// SetMappingReuse enables or disables the mapping template cache: when
// on, an arrival whose structure (Fingerprint) matches a previously
// admitted application first tries to commit that application's mapping —
// re-validated transactionally against the live platform — and only runs
// the full mapper when the template no longer fits. Reuse trades mapping
// optimality under load for admission latency; it is off by default.
func (m *Manager) SetMappingReuse(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if on && m.templates == nil {
		m.templates = newTemplateCache()
	} else if !on {
		m.templates = nil
	}
}

// SetJournal wires the durable admission journal: every reservation
// change — admission, departure, preemption release, relocation,
// eviction, fault, restore — is appended inside the same region-locked
// critical section that applies it, so per-region journal order equals
// commit order; that, plus the per-plan aggregated deltas each event
// carries, is what lets Replay rebuild the platform bit for bit. Wire
// the journal before the first admission (the field is read without a
// lock on the hot path); nil disables journaling.
func (m *Manager) SetJournal(w *journal.Writer) { m.jw = w }

// SetFaultBias sets the region-bias price the fault evacuation's
// relocation rounds use in the mapper's placement steps: a positive
// bias makes an evacuated resident prefer tiles inside regions its
// surviving placement already occupies — the hot-spare pattern, where
// spare capacity held in a resident's own regions absorbs its failed
// tiles without widening the lock footprint. Zero (the default)
// inherits the manager's configured RegionBias. Set before injecting
// faults; the field is read without a lock.
func (m *Manager) SetFaultBias(bias float64) { m.faultBias = bias }

// journalPlan appends one reservation-bearing event carrying the plan's
// aggregated deltas. Callers hold the region locks of the plan's
// footprint — emitting inside the critical section is what keeps
// journal order equal to commit order per region.
func (m *Manager) journalPlan(t journal.EventType, app string, prio model.Priority, plan *core.Plan) {
	if m.jw == nil {
		return
	}
	tiles, links := plan.Deltas()
	jt, jl := journal.FromDeltas(tiles, links)
	m.jw.Append(journal.Event{Type: t, App: app, Priority: int(prio), Tiles: jt, Links: jl})
}

// journalEvent appends a delta-free event (fault, restore, evict).
func (m *Manager) journalEvent(e journal.Event) {
	if m.jw == nil {
		return
	}
	m.jw.Append(e)
}

// removalPlan returns the plan releasing everything the admission
// reserves: the stored delta plan for a replay-rebuilt resident, or one
// aggregated from the Result for a live admission.
func (m *Manager) removalPlan(ad *Admission) (*core.Plan, error) {
	if ad.plan != nil {
		return ad.plan, nil
	}
	return core.NewRemovalPlan(m.plat, ad.Result)
}

// Platform exposes the managed platform. It is safe to read only while no
// admissions are in flight; concurrent inspectors should use Snapshot or
// Residual instead.
func (m *Manager) Platform() *arch.Platform { return m.plat }

// Snapshot returns a point-in-time snapshot of the managed platform.
// With copy-on-write snapshots enabled (the default) the capture
// coordinates per region — no caller and no commit ever waits on all
// region locks at once — and the returned snapshot is frozen: treat its
// Plat as read-only, and derive arch.Snapshot.Writable before mutating.
// With CoW disabled it is a deep copy taken under all region locks,
// owned outright by the caller.
func (m *Manager) Snapshot() *arch.Snapshot {
	cow, _, _ := m.snapshotMode()
	return m.captureSnapshot(cow)
}

// Residual returns the platform's current free-capacity view, read under
// all region locks.
func (m *Manager) Residual() arch.Residual {
	m.locks.LockAll()
	defer m.locks.UnlockAll()
	return m.plat.Residual()
}

// Stats returns a copy of the accumulated admission statistics.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	st.CoWFaults = m.faults.Load()
	return st
}

// NoteShed records one load-shed arrival of the given class: it was
// dropped before any mapping ran (saturated queue, open circuit
// breaker, full stage buffer). Pipeline.TrySubmit calls this on a
// full-queue refusal; the streaming front-end calls it for drops at its
// own stages so the per-class ledger stays complete.
func (m *Manager) NoteShed(p model.Priority) {
	m.mu.Lock()
	m.stats.ByClass[clampPriority(p)].Shed++
	m.mu.Unlock()
}

// NoteDLQRecovered records one dead-letter entry whose retry was
// admitted; see Stats.DLQRecovered.
func (m *Manager) NoteDLQRecovered() {
	m.mu.Lock()
	m.stats.DLQRecovered++
	m.mu.Unlock()
}

// NoteDLQExpired records one dead-letter entry dropped for good; see
// Stats.DLQExpired.
func (m *Manager) NoteDLQExpired() {
	m.mu.Lock()
	m.stats.DLQExpired++
	m.mu.Unlock()
}

// Start maps the application against the current platform state and
// admits it when feasible. Application names identify admissions and must
// be unique among running applications. Start is Admit without the
// outcome report.
func (m *Manager) Start(app *model.Application, lib *model.Library) (*Admission, error) {
	out := m.Admit(app, lib)
	if out.Err != nil {
		return nil, out.Err
	}
	return out.Admission, nil
}

// Admit runs one admission through the pipeline — snapshot, speculative
// map, serialized validate-and-commit, bounded retry — and reports the
// outcome. The admission's priority is the application's QoS class
// (app.QoS.Priority): above BestEffort it may preempt lower-priority
// admissions when the mesh is full (see SetPreemption). Rejections are
// reported in Outcome.Err, not returned.
func (m *Manager) Admit(app *model.Application, lib *model.Library) Outcome {
	return m.admit(app, lib, 0)
}

// repairTrigger classifies why a round starts from a stale mapping, for
// the repair-vs-full-remap accounting.
type repairTrigger int

const (
	triggerNone     repairTrigger = iota
	triggerConflict               // a commit conflict invalidated the round's mapping
	triggerTemplate               // no pooled template placement fit the live platform
)

// footprintFresh reports whether no commit or release has touched any of
// the footprint's regions since the snapshot was taken — the region-local
// staleness probe. When it holds, the live reservation state inside the
// footprint is identical to the snapshot the mapping was computed and
// verified against, so the commit can skip re-validation. The caller must
// hold the footprint's region locks.
func footprintFresh(plat *arch.Platform, snap *arch.Snapshot, footprint []arch.RegionID) bool {
	if len(snap.RegionVersions) != plat.RegionCount() {
		return false // repartitioned platform: versions not comparable
	}
	for _, r := range footprint {
		if plat.RegionVersion(r) != snap.RegionVersions[r] {
			return false
		}
	}
	return true
}

// registerPendingLocked claims an application name for one in-flight admission
// (duplicate detection against running, preempting and pending sets). It
// reports false with the error already set in out when the name is
// taken; on success the caller owns the pending entry until finishLocked
// releases it. Callers must hold m.mu.
func (m *Manager) registerPendingLocked(name string, out *Outcome) bool {
	if _, dup := m.running[name]; dup {
		out.Err = fmt.Errorf("manager: application %q already running", name)
		return false
	}
	if _, dup := m.preempting[name]; dup {
		out.Err = fmt.Errorf("manager: application %q already running", name)
		return false
	}
	if _, dup := m.pending[name]; dup {
		out.Err = fmt.Errorf("manager: application %q is already being admitted", name)
		return false
	}
	m.pending[name] = struct{}{}
	return true
}

func (m *Manager) admit(app *model.Application, lib *model.Library, wait time.Duration) Outcome {
	prio := clampPriority(app.QoS.Priority)
	out := Outcome{App: app.Name, Wait: wait, Priority: prio}
	m.mu.Lock()
	if !m.registerPendingLocked(app.Name, &out) {
		m.mu.Unlock()
		return out
	}
	m.mu.Unlock()
	return m.admitRegistered(app, lib, out)
}

// admitRegistered is the admission pipeline past name registration: the
// caller (admit, or the batched path re-routing a fallback) has already
// claimed the application's pending entry, which finishLocked releases.
func (m *Manager) admitRegistered(app *model.Application, lib *model.Library, out Outcome) Outcome {
	return m.admitFrom(app, lib, out, nil)
}

// admitFrom is admitRegistered with an optional seed: a speculative
// mapping that already exists but just lost a live commit validation (a
// batch spill whose plan no longer fits). A seeded admission enters the
// retry loop exactly as a per-item commit conflict would — repair the
// seed against a fresh snapshot instead of probing templates or mapping
// from scratch — so the batch's speculative work is recycled even when
// its commit is refused. The caller accounts the seed's mapping round in
// out.Attempts.
func (m *Manager) admitFrom(app *model.Application, lib *model.Library, out Outcome, seed *core.Result) Outcome {
	prio := out.Priority
	m.mu.Lock()
	tc := m.templates
	repairOn := m.repair
	preemptOn := m.preemption && prio > model.BestEffort
	maxRetries := m.maxRetries
	m.mu.Unlock()

	mapper := &core.Mapper{Lib: lib, Cfg: m.cfg}

	// repairFrom is the stale mapping the next round refits instead of
	// mapping from scratch; trigger records what made it stale.
	var repairFrom *core.Result
	trigger := triggerNone
	var snap *arch.Snapshot

	var fp string
	if seed != nil {
		retry := out.Attempts <= maxRetries
		m.mu.Lock()
		m.stats.Conflicts++
		if retry {
			m.stats.ConflictRetries++
		}
		m.mu.Unlock()
		if !retry {
			m.mu.Lock()
			m.finishLocked(&out, nil, &RejectionError{App: app.Name,
				Reason:    "batched plan lost its commit validation and retries are exhausted",
				Retryable: true})
			m.mu.Unlock()
			return out
		}
		snap = m.freshSnapshot()
		trigger = triggerConflict
		if repairOn {
			repairFrom = seed
		}
		if tc != nil {
			if f, err := Fingerprint(app, lib); err == nil {
				fp = f // cache the eventual mapping; the pool was probed in the batch phase
			}
		}
	}

	// Fast path: structurally identical application admitted before —
	// try committing its mapping directly. Each template's reservation
	// plan is validated under just its own region locks, so template
	// commits in disjoint regions proceed in parallel; validation against
	// the live platform makes a stale template harmless — it can be
	// refused, not applied wrongly.
	if seed == nil && tc != nil {
		if f, err := Fingerprint(app, lib); err == nil {
			fp = f
			if pool, start := tc.get(fp); len(pool) > 0 {
				commitStart := time.Now()
				// Each failed validation already computed the template's
				// violation list; remember the least-conflicted template —
				// fewest conflicted regions, then fewest violations — as
				// the cheapest one to repair.
				leastConflicted := pool[start]
				leastRegions, leastViolations := -1, -1
				for k := 0; k < len(pool); k++ {
					tpl := pool[(start+k)%len(pool)]
					plan, perr := core.NewPlan(m.plat, tpl)
					if perr != nil {
						continue
					}
					footprint := plan.Regions()
					m.locks.Lock(footprint)
					verr := plan.Validate(m.plat)
					if verr == nil {
						plan.Commit(m.plat)
						m.journalPlan(journal.EvAdmit, app.Name, prio, plan)
						m.locks.Unlock(footprint)
						out.Commit += time.Since(commitStart)
						m.mu.Lock()
						m.seq++
						ad := &Admission{App: app, Result: tpl, Seq: m.seq, Priority: prio, lib: lib}
						m.running[app.Name] = ad
						m.stats.TemplateHits++
						m.finishLocked(&out, ad, nil)
						m.mu.Unlock()
						return out
					}
					m.locks.Unlock(footprint)
					var conflict *core.ConflictError
					if errors.As(verr, &conflict) {
						nr, nv := len(conflict.Regions), len(conflict.Violations)
						if leastViolations < 0 || nr < leastRegions ||
							(nr == leastRegions && nv < leastViolations) {
							leastConflicted, leastRegions, leastViolations = tpl, nr, nv
						}
					}
				}
				// No remembered placement fits the current residual
				// state. Instead of discarding the pool, repair a
				// template against a fresh snapshot: the placements that
				// still fit stay, only the conflicting processes are
				// re-placed.
				m.mu.Lock()
				m.stats.StaleTemplates++
				m.mu.Unlock()
				snap = m.freshSnapshot()
				out.Commit += time.Since(commitStart)
				trigger = triggerTemplate
				if repairOn {
					repairFrom = leastConflicted
				}
			}
		}
	}

	if snap == nil {
		snap = m.baseSnapshot()
	}

	// Counters accumulated outside the locks, folded into Stats at the
	// next bookkeeping section.
	var repairAttempts, fullRemaps uint64
	for {
		out.Attempts++
		var res *core.Result
		var mapErr error
		repaired := false
		if repairFrom != nil {
			repairStart := time.Now()
			rep, err := mapper.Repair(repairFrom, snap)
			out.Repair += time.Since(repairStart)
			repairAttempts++
			repairFrom = nil
			if err == nil && rep.Feasible {
				res = rep
				repaired = true
			}
		}
		if res == nil {
			// Full four-step map: the first round of a normal admission,
			// or the fallback when repair is off, refused or infeasible.
			if trigger != triggerNone {
				fullRemaps++
			}
			mapStart := time.Now()
			res, mapErr = mapper.Map(app, snap.Plat)
			out.Map += time.Since(mapStart)
		}

		commitStart := time.Now()
		m.mu.Lock()
		m.stats.RepairAttempts += repairAttempts
		m.stats.FullRemaps += fullRemaps
		repairAttempts, fullRemaps = 0, 0
		if repaired {
			// This retry/stale round was served by repair; no full remap
			// ran, whatever the commit below decides.
			switch trigger {
			case triggerConflict:
				m.stats.RepairedConflicts++
			case triggerTemplate:
				m.stats.RepairedTemplates++
			}
		}
		m.mu.Unlock()

		switch {
		case mapErr != nil:
			// Structural errors (unknown tiles, no implementations) do
			// not depend on residual state; no point retrying.
			out.Commit += time.Since(commitStart)
			m.mu.Lock()
			m.finishLocked(&out, nil, &RejectionError{App: app.Name, Reason: mapErr.Error()})
			m.mu.Unlock()
			return out
		case !res.Feasible:
			// Infeasible against the snapshot. If the platform changed
			// since — e.g. an application stopped and freed resources —
			// the verdict may be stale; retry on fresh state. The global
			// version counter is atomic, so the staleness probe needs no
			// lock.
			if m.plat.Version() != snap.Version && out.Attempts <= maxRetries {
				snap = m.freshSnapshot()
				out.Commit += time.Since(commitStart)
				trigger = triggerNone
				continue
			}
			reason := "no feasible mapping with current occupancy"
			if n := len(res.Trace.Notes); n > 0 {
				reason = res.Trace.Notes[n-1]
			}
			out.Commit += time.Since(commitStart)
			// Full mesh, no retryable staleness: a priority arrival may
			// displace lower-priority admissions instead of giving up. The
			// mapper's infeasible verdict carries no region attribution,
			// so every lower-priority victim is a candidate.
			if preemptOn && m.preemptAdmit(&out, app, lib, mapper, prio, nil) {
				return out
			}
			m.mu.Lock()
			m.finishLocked(&out, nil, &RejectionError{App: app.Name, Reason: reason, Retryable: true})
			m.mu.Unlock()
			return out
		default:
			// Sharded commit: aggregate the reservation plan without any
			// lock, then validate and commit holding only the region
			// locks of the plan's footprint. Admissions whose footprints
			// are disjoint run this section concurrently.
			plan, perr := core.NewPlan(m.plat, res)
			if perr != nil {
				out.Commit += time.Since(commitStart)
				m.mu.Lock()
				m.finishLocked(&out, nil, &RejectionError{App: app.Name, Reason: perr.Error()})
				m.mu.Unlock()
				return out
			}
			footprint := plan.Regions()
			m.locks.Lock(footprint)
			// Region-local staleness probe: if no commit has touched the
			// footprint's regions since the snapshot, the live state there
			// is exactly what the mapper already verified the mapping
			// against, so the per-resource re-validation is redundant.
			var err error
			if !footprintFresh(m.plat, snap, footprint) {
				err = plan.Validate(m.plat)
			}
			if err == nil {
				plan.Commit(m.plat)
				m.journalPlan(journal.EvAdmit, app.Name, prio, plan)
				m.locks.Unlock(footprint)
				out.Commit += time.Since(commitStart)
				m.mu.Lock()
				m.seq++
				ad := &Admission{App: app, Result: res, Seq: m.seq, Priority: prio, lib: lib}
				m.running[app.Name] = ad
				if repaired {
					out.Repaired = true
				}
				m.finishLocked(&out, ad, nil)
				m.mu.Unlock()
				if tc != nil && fp != "" {
					tc.put(fp, res)
				}
				return out
			}
			m.locks.Unlock(footprint)
			var conflict *core.ConflictError
			isConflict := errors.As(err, &conflict)
			retry := isConflict && out.Attempts <= maxRetries
			if isConflict {
				m.mu.Lock()
				m.stats.Conflicts++
				if retry {
					m.stats.ConflictRetries++
				}
				m.mu.Unlock()
			}
			if retry {
				// A competing admission won the resources between
				// snapshot and commit: repair the mapping we just
				// computed against fresh state (or re-map from scratch
				// when repair is off).
				snap = m.freshSnapshot()
				out.Commit += time.Since(commitStart)
				trigger = triggerConflict
				if repairOn {
					repairFrom = res
				}
				continue
			}
			out.Commit += time.Since(commitStart)
			// Out of retries (or a non-retryable shortfall): before
			// rejecting, a priority arrival may preempt. The conflict's
			// region attribution scopes victim selection to admissions
			// whose footprints overlap where this plan ran out of room.
			if preemptOn && isConflict &&
				m.preemptAdmit(&out, app, lib, mapper, prio, conflict.Regions) {
				return out
			}
			m.mu.Lock()
			m.finishLocked(&out, nil, &RejectionError{App: app.Name, Reason: err.Error(), Retryable: true})
			m.mu.Unlock()
			return out
		}
	}
}

// finishLocked records the end of an admission attempt. Callers hold m.mu.
func (m *Manager) finishLocked(out *Outcome, ad *Admission, err error) {
	delete(m.pending, out.App)
	if ad != nil {
		out.Admitted = true
		out.Admission = ad
		m.stats.Admitted++
		m.stats.ByClass[clampPriority(out.Priority)].Admitted++
		m.loadCharge(ad)
	} else {
		out.Err = err
		m.stats.Rejected++
		m.stats.ByClass[clampPriority(out.Priority)].Rejected++
	}
	if out.Attempts > 0 {
		m.stats.Retries += uint64(out.Attempts - 1)
	}
	m.stats.Wait += out.Wait
	m.stats.Map += out.Map
	m.stats.Repair += out.Repair
	m.stats.Commit += out.Commit
	m.stats.ByClass[clampPriority(out.Priority)].Latency +=
		out.Wait + out.Map + out.Repair + out.Commit
}

// ErrRelocating reports a Stop that raced a preemption: the named
// application is claimed by the preemption planner (about to be displaced
// or mid-relocation) and cannot be stopped until it either returns to the
// running set or is evicted. Callers should retry shortly; errors.Is
// recognises it through the wrapping.
var ErrRelocating = errors.New("being relocated by the preemption planner")

// Stop releases the named application's resources, holding only the
// region locks its reservations touch, so departures in disjoint regions
// proceed in parallel with each other and with commits.
func (m *Manager) Stop(name string) error {
	m.mu.Lock()
	if _, pend := m.pending[name]; pend {
		m.mu.Unlock()
		return fmt.Errorf("manager: application %q is still being admitted", name)
	}
	if _, rel := m.preempting[name]; rel {
		m.mu.Unlock()
		return fmt.Errorf("manager: application %q is %w", name, ErrRelocating)
	}
	ad, ok := m.running[name]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("manager: application %q is not running", name)
	}
	delete(m.running, name)
	m.loadRelease(ad)
	m.mu.Unlock()
	plan, err := m.removalPlan(ad)
	if err != nil {
		return nil // lenient planning never errors; keep the compiler honest
	}
	footprint := plan.Regions()
	m.locks.Lock(footprint)
	plan.Release(m.plat)
	m.journalPlan(journal.EvDepart, name, ad.Priority, plan)
	m.locks.Unlock(footprint)
	return nil
}

// AppState classifies where an application stands in one manager's
// lifecycle, for callers — like the fleet's placement reconciliation —
// that must distinguish "gone for good" from "temporarily out of the
// running set while the preemption planner holds it".
type AppState int

const (
	// AppUnknown: the manager holds no record of the name — never
	// admitted, stopped, or evicted by the preemption planner.
	AppUnknown AppState = iota
	// AppPending: submitted, admission outcome not yet decided.
	AppPending
	// AppRunning: resident with live reservations.
	AppRunning
	// AppPreempting: claimed by the preemption planner; it will either
	// return to running (relocated) or become unknown (evicted).
	AppPreempting
)

// StateOf reports the named application's lifecycle state. The answer is
// atomic with respect to admissions, stops and preemption claims: a live
// application is always in exactly one of the pending, running or
// preempting sets, so AppUnknown means the manager truly does not hold
// the application.
func (m *Manager) StateOf(name string) AppState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.pending[name]; ok {
		return AppPending
	}
	if _, ok := m.running[name]; ok {
		return AppRunning
	}
	if _, ok := m.preempting[name]; ok {
		return AppPreempting
	}
	return AppUnknown
}

// Running lists admitted applications in admission order.
func (m *Manager) Running() []*Admission {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Admission, 0, len(m.running))
	for _, ad := range m.running {
		out = append(out, ad)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// TotalEnergy sums the per-period energy of all running applications.
// Periods may differ between applications; the sum is meaningful as a
// power-proportional figure when periods are equal (as in the
// experiments) and otherwise serves as a coarse load indicator.
func (m *Manager) TotalEnergy() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var e float64
	for _, ad := range m.running {
		if ad.Result == nil {
			continue // replay-rebuilt resident: energy did not survive the crash
		}
		e += ad.Result.Energy.Total()
	}
	return e
}

// Load summarises platform occupancy: fraction of tiles powered, mean
// utilisation of powered tiles, and fraction of total link capacity
// reserved.
type Load struct {
	TilesPowered int
	TilesTotal   int
	MeanUtil     float64
	LinkReserved float64 // fraction of aggregate link capacity
}

// Load computes the current occupancy summary under all region locks.
func (m *Manager) Load() Load {
	m.locks.LockAll()
	defer m.locks.UnlockAll()
	var l Load
	var utilSum float64
	for _, t := range m.plat.Tiles {
		if t.Type == arch.TypeSource || t.Type == arch.TypeSink {
			continue
		}
		l.TilesTotal++
		if t.Occupants > 0 {
			l.TilesPowered++
			utilSum += t.ReservedUtil
		}
	}
	if l.TilesPowered > 0 {
		l.MeanUtil = utilSum / float64(l.TilesPowered)
	}
	var cap, res int64
	for _, link := range m.plat.Links {
		cap += link.CapBps
		res += link.ReservedBps
	}
	if cap > 0 {
		l.LinkReserved = float64(res) / float64(cap)
	}
	return l
}

// CheckInvariants verifies the platform's reservation ledger is sane: no
// tile or link over-committed, nothing negative. The stress tests call it
// while admissions are in flight.
func (m *Manager) CheckInvariants() error {
	m.locks.LockAll()
	defer m.locks.UnlockAll()
	const eps = 1e-9
	for _, t := range m.plat.Tiles {
		if t.ReservedMem < 0 || t.ReservedMem > t.MemBytes {
			return fmt.Errorf("tile %q memory ledger out of range: %d of %d", t.Name, t.ReservedMem, t.MemBytes)
		}
		if t.ReservedUtil < -eps || t.ReservedUtil > 1+eps {
			return fmt.Errorf("tile %q utilisation out of range: %v", t.Name, t.ReservedUtil)
		}
		if t.Occupants < 0 || (t.MaxOccupants > 0 && t.Occupants > t.MaxOccupants) {
			return fmt.Errorf("tile %q occupancy out of range: %d", t.Name, t.Occupants)
		}
		if t.NICapBps > 0 && (t.ReservedInBps < 0 || t.ReservedInBps > t.NICapBps ||
			t.ReservedOutBps < 0 || t.ReservedOutBps > t.NICapBps) {
			return fmt.Errorf("tile %q NI ledger out of range: in=%d out=%d cap=%d",
				t.Name, t.ReservedInBps, t.ReservedOutBps, t.NICapBps)
		}
	}
	for _, l := range m.plat.Links {
		if l.ReservedBps < 0 || l.ReservedBps > l.CapBps {
			return fmt.Errorf("link %d ledger out of range: %d of %d", l.ID, l.ReservedBps, l.CapBps)
		}
	}
	return nil
}
