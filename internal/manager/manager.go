// Package manager implements the on-line resource manager the paper's
// setting presumes (§1.3: "the spatial mapping is performed always when a
// new streaming application is started"): applications arrive and leave at
// run time, each arrival is mapped against the platform's actual residual
// resources, admitted if a feasible mapping exists, and holds its
// reservations until it stops. This is the component a deployment would
// run on the control processor; the examples and experiment E12 exercise
// it.
package manager

import (
	"fmt"
	"sort"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/model"
)

// Admission records one running application.
type Admission struct {
	App    *model.Application
	Result *core.Result
	// Seq is the admission order, for deterministic reporting.
	Seq int
}

// RejectionError reports why an application was not admitted.
type RejectionError struct {
	App    string
	Reason string
}

func (e *RejectionError) Error() string {
	return fmt.Sprintf("manager: %q rejected: %s", e.App, e.Reason)
}

// Manager owns a platform and the set of admitted applications.
type Manager struct {
	plat    *arch.Platform
	cfg     core.Config
	running map[string]*Admission
	seq     int
}

// New returns a manager over the given platform. The platform is owned by
// the manager from here on: reservations of admitted applications live on
// it.
func New(plat *arch.Platform, cfg core.Config) *Manager {
	return &Manager{plat: plat, cfg: cfg, running: make(map[string]*Admission)}
}

// Platform exposes the managed platform for inspection (not mutation).
func (m *Manager) Platform() *arch.Platform { return m.plat }

// Start maps the application against the current platform state and
// admits it when feasible. Application names identify admissions and must
// be unique among running applications.
func (m *Manager) Start(app *model.Application, lib *model.Library) (*Admission, error) {
	if _, dup := m.running[app.Name]; dup {
		return nil, fmt.Errorf("manager: application %q already running", app.Name)
	}
	mapper := &core.Mapper{Lib: lib, Cfg: m.cfg}
	res, err := mapper.Map(app, m.plat)
	if err != nil {
		return nil, &RejectionError{App: app.Name, Reason: err.Error()}
	}
	if !res.Feasible {
		reason := "no feasible mapping with current occupancy"
		if len(res.Trace.Notes) > 0 {
			reason = res.Trace.Notes[len(res.Trace.Notes)-1]
		}
		return nil, &RejectionError{App: app.Name, Reason: reason}
	}
	if err := core.Apply(m.plat, res); err != nil {
		// Map works on a clone; Apply re-validates on the live platform.
		// A failure here means the platform changed between the two,
		// which cannot happen single-threaded — treat as a rejection.
		return nil, &RejectionError{App: app.Name, Reason: err.Error()}
	}
	m.seq++
	ad := &Admission{App: app, Result: res, Seq: m.seq}
	m.running[app.Name] = ad
	return ad, nil
}

// Stop releases the named application's resources.
func (m *Manager) Stop(name string) error {
	ad, ok := m.running[name]
	if !ok {
		return fmt.Errorf("manager: application %q is not running", name)
	}
	core.Remove(m.plat, ad.Result)
	delete(m.running, name)
	return nil
}

// Running lists admitted applications in admission order.
func (m *Manager) Running() []*Admission {
	out := make([]*Admission, 0, len(m.running))
	for _, ad := range m.running {
		out = append(out, ad)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// TotalEnergy sums the per-period energy of all running applications.
// Periods may differ between applications; the sum is meaningful as a
// power-proportional figure when periods are equal (as in the
// experiments) and otherwise serves as a coarse load indicator.
func (m *Manager) TotalEnergy() float64 {
	var e float64
	for _, ad := range m.running {
		e += ad.Result.Energy.Total()
	}
	return e
}

// Load summarises platform occupancy: fraction of tiles powered, mean
// utilisation of powered tiles, and fraction of total link capacity
// reserved.
type Load struct {
	TilesPowered int
	TilesTotal   int
	MeanUtil     float64
	LinkReserved float64 // fraction of aggregate link capacity
}

// Load computes the current occupancy summary.
func (m *Manager) Load() Load {
	var l Load
	var utilSum float64
	for _, t := range m.plat.Tiles {
		if t.Type == arch.TypeSource || t.Type == arch.TypeSink {
			continue
		}
		l.TilesTotal++
		if t.Occupants > 0 {
			l.TilesPowered++
			utilSum += t.ReservedUtil
		}
	}
	if l.TilesPowered > 0 {
		l.MeanUtil = utilSum / float64(l.TilesPowered)
	}
	var cap, res int64
	for _, link := range m.plat.Links {
		cap += link.CapBps
		res += link.ReservedBps
	}
	if cap > 0 {
		l.LinkReserved = float64(res) / float64(cap)
	}
	return l
}
