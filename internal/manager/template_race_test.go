package manager

import (
	"sync"
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/model"
)

// TestTemplateCachePoolEvictionRace hammers one fingerprint's pool past
// its capacity from concurrent writers while readers rotate through it
// (run with -race): put must be copy-on-write so a header handed out by
// get never has its backing array mutated underneath the reader.
func TestTemplateCachePoolEvictionRace(t *testing.T) {
	tc := newTemplateCache()
	placement := func(n int) *core.Result {
		return &core.Result{Mapping: &core.Mapping{
			Tile: map[model.ProcessID]arch.TileID{0: arch.TileID(n)},
		}}
	}
	const fp = "fp"
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4*templatePoolSize; i++ {
				tc.put(fp, placement(w*1000+i))
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 8*templatePoolSize; i++ {
				pool, start := tc.get(fp)
				for k := 0; k < len(pool); k++ {
					if res := pool[(start+k)%len(pool)]; res == nil || res.Mapping == nil {
						t.Error("torn pool entry observed")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if pool, _ := tc.get(fp); len(pool) != templatePoolSize {
		t.Fatalf("pool size = %d, want %d after saturation", len(pool), templatePoolSize)
	}
}
