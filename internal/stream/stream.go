// Package stream is the long-lived admission front-end: it composes a
// manager pipeline (or a multi-mesh fleet) into context-aware channel
// stages so the run-time spatial mapper can serve sustained
// million-arrival traffic instead of a test driver's bounded batch.
//
// The stage chain, in arrival order:
//
//	Submit → ingress (bounded, blocking = backpressure)
//	       → throttle + classify (optional arrivals/sec token bucket)
//	       → per-QoS-class dropping buffers (BestEffort smallest, shed
//	         first; Standard next; Critical sends block — its contract
//	         is backpressure, never silent loss)
//	       → dispatcher (highest class first; circuit breaker sheds
//	         Standard/BestEffort while open; Critical submits blocking,
//	         the rest via TrySubmit so a saturated queue sheds instead
//	         of stalling the stage)
//	       → per-arrival watcher → Results
//
// Capacity rejections (manager.IsRetryableRejection) park in a bounded
// dead-letter queue and are re-enqueued once measured utilization drops
// below a threshold; recovered admissions and expired entries are
// accounted in the backend's manager.Stats. A rolling window reports
// live p50/p99 admission latency and admissions/sec.
//
// Every arrival accepted by Submit produces exactly one Result:
// admitted (possibly via DLQ recovery), rejected, shed, or expired.
// Report.LedgerOK checks that identity; the graceful Shutdown drains
// every stage so it holds even across the shutdown edge.
package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rtsm/internal/manager"
	"rtsm/internal/model"
)

// Arrival is one admission request flowing through the server.
type Arrival struct {
	App *model.Application
	Lib *model.Library
	// t is the Submit timestamp, the start of the latency measurement.
	t time.Time
	// deadline, when set, is the request's drop-dead time: a Standard or
	// BestEffort arrival still queued past it is shed (ShedAtDeadline)
	// instead of burning a mapping round nobody is waiting for. Critical
	// arrivals are never deadline-shed — their contract is backpressure,
	// and the deadline only bounds how long a SubmitWait caller waits.
	deadline time.Time
	// notify, when set, receives a copy of the arrival's single Result
	// (capacity 1, so the delivery never blocks the stages).
	notify chan Result
}

// Verdict is how an arrival's passage through the server ended.
type Verdict uint8

// The four terminal verdicts. Every accepted Submit gets exactly one.
const (
	// VerdictAdmitted: the backend admitted the application (directly or
	// via a DLQ retry — see Result.Recovered).
	VerdictAdmitted Verdict = iota
	// VerdictRejected: the backend rejected it for good (structural, or
	// capacity with no DLQ configured / retry budget spent... final).
	VerdictRejected
	// VerdictShed: dropped before mapping — full class buffer, open
	// circuit breaker, or saturated backend queue.
	VerdictShed
	// VerdictExpired: parked in the DLQ but never recovered (queue full,
	// retry budget spent on capacity rejections, or server shutdown).
	VerdictExpired
)

// String names the verdict for reports.
func (v Verdict) String() string {
	switch v {
	case VerdictAdmitted:
		return "admitted"
	case VerdictRejected:
		return "rejected"
	case VerdictShed:
		return "shed"
	default:
		return "expired"
	}
}

// Result is the single terminal outcome of one accepted arrival.
type Result struct {
	App     string
	Class   model.Priority
	Verdict Verdict
	// Recovered marks an admission that went through the dead-letter
	// queue (counted inside Admitted, never in addition to it).
	Recovered bool
	// Latency is Submit → verdict, including any DLQ parking time.
	Latency time.Duration
	// ShedAt names the stage that dropped a shed arrival; ShedAtNone
	// for every other verdict.
	ShedAt ShedStage
	// Outcome is the backend's report for admitted/rejected verdicts;
	// zero-valued for sheds and expiries, which never reached a mapper.
	Outcome manager.Outcome
}

// ShedStage attributes a shed to the stage that dropped the arrival.
type ShedStage int

const (
	// ShedAtNone marks a non-shed result.
	ShedAtNone ShedStage = iota
	// ShedAtBuffer: the arrival's class buffer was full at classify.
	ShedAtBuffer
	// ShedAtBreaker: the circuit breaker was open at dispatch.
	ShedAtBreaker
	// ShedAtQueue: the backend queue refused the non-blocking submit.
	ShedAtQueue
	// ShedAtDeadline: the arrival's request deadline passed while it was
	// still queued in a server stage.
	ShedAtDeadline
)

// String names the shedding stage for reports.
func (s ShedStage) String() string {
	switch s {
	case ShedAtBuffer:
		return "buffer"
	case ShedAtBreaker:
		return "breaker"
	case ShedAtQueue:
		return "queue"
	case ShedAtDeadline:
		return "deadline"
	}
	return "none"
}

// Options configures a Server. Backend is required; everything else has
// serviceable defaults.
type Options struct {
	Backend Backend
	// Ingress is the ingress buffer depth (default 256). Submit blocks
	// when it is full — the outermost backpressure.
	Ingress int
	// ClassBuf is the Critical class buffer capacity; Standard gets half
	// and BestEffort a quarter (min 1 each), so saturation sheds
	// BestEffort first, then Standard (default 64).
	ClassBuf int
	// Rate throttles dispatch to this many arrivals/sec (0 = unlimited).
	// Ignored while the AIMD controller runs — the controller owns the
	// rate then.
	Rate int
	// AIMD enables the adaptive overload controller when AIMD.SLO > 0:
	// the dispatch rate is raised additively while windowed p99 holds
	// under the SLO and cut multiplicatively on a breach or an open
	// breaker, replacing hand-tuned static rates.
	AIMD AIMDConfig
	// DLQ is the dead-letter queue capacity; 0 disables it (capacity
	// rejections become final).
	DLQ int
	// DLQBelow is the utilization threshold under which parked entries
	// retry (default 0.75).
	DLQBelow float64
	// DLQRetries is each entry's total backend-submission budget,
	// counting the original rejected one (default 3).
	DLQRetries int
	// DLQEvery is the retry loop's poll period (default 5ms).
	DLQEvery time.Duration
	// Breaker tunes the circuit breaker; the zero value gets defaults.
	Breaker BreakerConfig
	// Window is the rolling metrics window (default 1s).
	Window time.Duration
	// Results is the results channel buffer (default 4× Ingress).
	Results int
}

func (o Options) withDefaults() Options {
	if o.Ingress <= 0 {
		o.Ingress = 256
	}
	if o.ClassBuf <= 0 {
		o.ClassBuf = 64
	}
	if o.DLQBelow <= 0 {
		o.DLQBelow = 0.75
	}
	if o.DLQRetries <= 0 {
		o.DLQRetries = 3
	}
	if o.DLQEvery <= 0 {
		o.DLQEvery = 5 * time.Millisecond
	}
	if o.Window <= 0 {
		o.Window = time.Second
	}
	if o.Results <= 0 {
		o.Results = 4 * o.Ingress
	}
	if o.AIMD.enabled() {
		o.AIMD = o.AIMD.withDefaults()
	}
	return o
}

// ErrServerClosed is returned by Submit after Shutdown began.
var ErrServerClosed = errors.New("stream: server is closed")

// Server is the streaming admission front-end. Construct with New,
// feed with Submit, consume Results continuously, and stop with
// Shutdown. Safe for concurrent Submit calls.
type Server struct {
	opts    Options
	backend Backend

	mu      sync.RWMutex // guards closed vs Submit's ingress send
	closed  bool
	ingress chan Arrival
	classes [model.NumPriorities]chan Arrival
	results chan Result

	breaker *breaker
	dlq     *dlq
	win     *metricsWindow
	// svcWin tracks service latency (backend submission → outcome),
	// excluding ingress/class-buffer queue wait. It is the AIMD
	// controller's feedback signal: queue wait under backpressure grows
	// with buffer depth at any sub-capacity rate, so steering on it
	// would drive the rate to the floor; service latency is what the
	// dispatch rate can actually protect.
	svcWin *metricsWindow
	// rate is the live dispatch throttle in arrivals/sec (0 =
	// unlimited): static Options.Rate, or the AIMD controller's output.
	rate rateBox

	stages   sync.WaitGroup // classify + dispatch
	watchers sync.WaitGroup // one per backend submission in flight
	dlqDone  chan struct{}
	aimdDone chan struct{}
	quit     chan struct{}

	c counters
}

// counters are the server's ledger, all atomic (bumped from watchers,
// stages and the DLQ loop concurrently).
type counters struct {
	submitted, admitted, recovered, rejected, expired atomic.Uint64
	shedByClass                                       [model.NumPriorities]atomic.Uint64
	recoveredByClass, expiredByClass                  [model.NumPriorities]atomic.Uint64
	shedBuffer, shedBreaker, shedQueue, shedDeadline  atomic.Uint64
	rateCuts, rateRaises                              atomic.Uint64
}

// clampClass folds any priority into the valid class range, mirroring
// the manager's own clamping so both ledgers bucket a wild value the
// same way.
func clampClass(p model.Priority) model.Priority {
	if p < 0 {
		return 0
	}
	if int(p) >= model.NumPriorities {
		return model.Priority(model.NumPriorities - 1)
	}
	return p
}

// New builds and starts a server over the given backend.
func New(opts Options) (*Server, error) {
	if opts.Backend == nil {
		return nil, fmt.Errorf("stream: Options.Backend is required")
	}
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		backend: opts.Backend,
		ingress: make(chan Arrival, opts.Ingress),
		results: make(chan Result, opts.Results),
		breaker: newBreaker(opts.Breaker),
		win:     newMetricsWindow(opts.Window),
		svcWin:  newMetricsWindow(opts.Window),
		quit:    make(chan struct{}),
	}
	// Class buffer sizing is the shedding order: BestEffort saturates
	// (and sheds) first, Standard second, Critical never — it blocks.
	caps := [model.NumPriorities]int{}
	caps[model.Critical] = opts.ClassBuf
	caps[model.Standard] = max(1, opts.ClassBuf/2)
	caps[model.BestEffort] = max(1, opts.ClassBuf/4)
	for c := range s.classes {
		s.classes[c] = make(chan Arrival, caps[c])
	}
	if opts.DLQ > 0 {
		s.dlq = newDLQ(opts.DLQ)
		s.dlqDone = make(chan struct{})
		go s.dlqLoop()
	}
	if opts.AIMD.enabled() {
		// Start optimistic: an unsaturated server pays no throttle tax,
		// and the first SLO breach cuts multiplicatively anyway.
		s.rate.store(opts.AIMD.MaxRate)
		s.aimdDone = make(chan struct{})
		go s.aimdLoop()
	} else {
		s.rate.store(float64(opts.Rate))
	}
	s.stages.Add(2)
	go s.classify()
	go s.dispatch()
	return s, nil
}

// Submit hands one arrival to the server. It blocks while the ingress
// buffer is full (backpressure toward the producer) and fails only
// after Shutdown began. Every accepted arrival yields exactly one
// Result on Results.
func (s *Server) Submit(app *model.Application, lib *model.Library) error {
	return s.SubmitCtx(context.Background(), app, lib)
}

// SubmitCtx is Submit with a context: a cancellation or deadline can
// abandon the wait for ingress space (the arrival never entered and is
// not counted), and a context deadline rides with the arrival through
// the stages — a Standard or BestEffort arrival still queued past it is
// shed rather than mapped for a caller that already gave up.
func (s *Server) SubmitCtx(ctx context.Context, app *model.Application, lib *model.Library) error {
	_, err := s.submit(ctx, app, lib, nil)
	return err
}

// SubmitWait submits one arrival and blocks until its single Result
// arrives (or ctx ends first — the arrival still runs to its verdict
// and is counted in the ledger; only the wait is abandoned). It is the
// request/response shape the network front door needs: one goroutine
// per in-flight request, no shared Results() demultiplexing.
func (s *Server) SubmitWait(ctx context.Context, app *model.Application, lib *model.Library) (Result, error) {
	notify, err := s.submit(ctx, app, lib, make(chan Result, 1))
	if err != nil {
		return Result{}, err
	}
	select {
	case r := <-notify:
		return r, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// submit places one arrival into ingress, respecting ctx while blocked.
func (s *Server) submit(ctx context.Context, app *model.Application, lib *model.Library, notify chan Result) (chan Result, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrServerClosed
	}
	a := Arrival{App: app, Lib: lib, t: time.Now(), notify: notify}
	if d, ok := ctx.Deadline(); ok {
		a.deadline = d
	}
	select {
	case s.ingress <- a:
		s.c.submitted.Add(1)
		return notify, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Results delivers each accepted arrival's single terminal Result. The
// consumer must keep draining it until it closes (at the end of
// Shutdown); an undrained results channel eventually blocks the whole
// chain — that is backpressure, not a bug.
func (s *Server) Results() <-chan Result { return s.results }

// Metrics is the live rolling-window view: p50/p99 admission latency
// and admissions/sec.
func (s *Server) Metrics() WindowSnapshot { return s.win.Snapshot() }

// classify drains ingress through the throttle into the per-class
// buffers. The throttle's rate is read per arrival from the rate box,
// so the AIMD controller's cuts and raises take effect immediately.
// BestEffort and Standard sends drop on a full buffer (the shed,
// cheapest possible: no mapping ran); Critical sends block, propagating
// backpressure to Submit through ingress. A non-Critical arrival whose
// request deadline already passed is shed before it ever costs a
// buffer slot.
func (s *Server) classify() {
	defer s.stages.Done()
	defer func() {
		for _, c := range s.classes {
			close(c)
		}
	}()
	var tokens float64
	last := time.Now()
	for a := range s.ingress {
		if rate := s.rate.load(); rate > 0 {
			burst := rate / 100
			if burst < 1 {
				burst = 1
			}
			now := time.Now()
			tokens += now.Sub(last).Seconds() * rate
			if tokens > burst {
				tokens = burst
			}
			last = now
			if tokens < 1 {
				wait := time.Duration((1 - tokens) / rate * float64(time.Second))
				time.Sleep(wait)
				now = time.Now()
				tokens += now.Sub(last).Seconds() * rate
				last = now
			}
			tokens--
		}
		c := clampClass(a.App.QoS.Priority)
		if c == model.Critical {
			s.classes[c] <- a
			continue
		}
		if !a.deadline.IsZero() && time.Now().After(a.deadline) {
			s.c.shedDeadline.Add(1)
			s.shed(a, c, ShedAtDeadline)
			continue
		}
		select {
		case s.classes[c] <- a:
		default:
			s.c.shedBuffer.Add(1)
			s.shed(a, c, ShedAtBuffer)
		}
	}
}

// dispatch drains the class buffers highest class first and submits to
// the backend. It exits once every class buffer is closed and drained.
func (s *Server) dispatch() {
	defer s.stages.Done()
	crit := s.classes[model.Critical]
	std := s.classes[model.Standard]
	be := s.classes[model.BestEffort]
	for crit != nil || std != nil || be != nil {
		// Strict priority: take a Critical arrival whenever one is ready
		// before even looking at the lower buffers, and a Standard one
		// before BestEffort — so under pressure the BestEffort buffer
		// drains last and sheds first. Aging inside the backend's own
		// queue keeps this starvation-free end to end.
		if crit != nil {
			select {
			case a, ok := <-crit:
				if !ok {
					crit = nil
					continue
				}
				s.handle(a, model.Critical)
				continue
			default:
			}
		}
		if std != nil {
			select {
			case a, ok := <-std:
				if !ok {
					std = nil
					continue
				}
				s.handle(a, model.Standard)
				continue
			default:
			}
		}
		select {
		case a, ok := <-crit:
			if !ok {
				crit = nil
				continue
			}
			s.handle(a, model.Critical)
		case a, ok := <-std:
			if !ok {
				std = nil
				continue
			}
			s.handle(a, model.Standard)
		case a, ok := <-be:
			if !ok {
				be = nil
				continue
			}
			s.handle(a, model.BestEffort)
		}
	}
}

// handle submits one dispatched arrival to the backend: Critical blocks
// (backpressure), the rest shed on a saturated queue or an open
// breaker.
func (s *Server) handle(a Arrival, c model.Priority) {
	if c != model.Critical && !a.deadline.IsZero() && time.Now().After(a.deadline) {
		// The request deadline expired while the arrival sat in its class
		// buffer; mapping it now would serve nobody.
		s.c.shedDeadline.Add(1)
		s.shed(a, c, ShedAtDeadline)
		return
	}
	if c != model.Critical && !s.breaker.allow() {
		s.c.shedBreaker.Add(1)
		s.shed(a, c, ShedAtBreaker)
		return
	}
	if c == model.Critical {
		wait, err := s.backend.Submit(a.App, a.Lib)
		if err != nil {
			// Backend refused outright (closed or duplicate): deliver a
			// final rejection so the arrival still gets its one outcome.
			s.deliver(a.notify, Result{
				App: a.App.Name, Class: c, Verdict: VerdictRejected,
				Latency: time.Since(a.t),
				Outcome: manager.Outcome{App: a.App.Name, Err: err, Priority: c},
			})
			return
		}
		s.watch(a, c, wait, 1)
		return
	}
	wait, ok := s.backend.TrySubmit(a.App, a.Lib)
	if !ok {
		// The backend's bounded queue is full; it already counted the
		// shed per class (manager.Pipeline.TrySubmit), so only the
		// server-side ledger is updated here.
		s.c.shedQueue.Add(1)
		s.shedNoNote(a, c, ShedAtQueue)
		return
	}
	s.watch(a, c, wait, 1)
}

// shed drops an arrival at a server stage and reports it to the
// backend's ledger.
func (s *Server) shed(a Arrival, c model.Priority, at ShedStage) {
	s.backend.NoteShed(c)
	s.shedNoNote(a, c, at)
}

// shedNoNote drops an arrival whose shed the backend already counted.
func (s *Server) shedNoNote(a Arrival, c model.Priority, at ShedStage) {
	s.deliver(a.notify, Result{App: a.App.Name, Class: c, Verdict: VerdictShed, Latency: time.Since(a.t), ShedAt: at})
}

// watch waits for one backend outcome on its own goroutine. attempts is
// the arrival's backend-submission count including this one. The
// watcher population is naturally bounded: TrySubmit refuses when the
// backend queue is full and Critical Submit blocks, so at most
// queue-depth + workers outcomes are ever pending.
func (s *Server) watch(a Arrival, c model.Priority, wait func() manager.Outcome, attempts int) {
	s.watchers.Add(1)
	submitted := time.Now()
	go func() {
		defer s.watchers.Done()
		out := wait()
		lat := time.Since(a.t)
		svc := time.Since(submitted)
		if out.Admitted {
			recovered := attempts > 1
			if recovered {
				s.backend.NoteDLQRecovered()
			}
			s.breaker.record(s.opts.Breaker.Latency > 0 && svc > s.opts.Breaker.Latency)
			s.win.add(lat)
			s.svcWin.add(svc)
			s.deliver(a.notify, Result{
				App: a.App.Name, Class: c, Verdict: VerdictAdmitted,
				Recovered: recovered, Latency: lat, Outcome: out,
			})
			return
		}
		s.breaker.record(true)
		if s.dlq != nil && manager.IsRetryableRejection(out.Err) {
			if attempts < s.opts.DLQRetries {
				if s.dlq.add(dlqEntry{arr: a, class: c, attempts: attempts}) {
					return // verdict deferred to the retry or the expiry
				}
			}
			// Budget spent or class quota full: the entry expires.
			s.backend.NoteDLQExpired()
			s.deliver(a.notify, Result{
				App: a.App.Name, Class: c, Verdict: VerdictExpired,
				Latency: lat, Outcome: out,
			})
			return
		}
		s.deliver(a.notify, Result{
			App: a.App.Name, Class: c, Verdict: VerdictRejected,
			Latency: lat, Outcome: out,
		})
	}()
}

// dlqLoop periodically retries parked entries once utilization drops
// below the threshold.
func (s *Server) dlqLoop() {
	defer close(s.dlqDone)
	t := time.NewTicker(s.opts.DLQEvery)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			if s.backend.Utilization() >= s.opts.DLQBelow {
				continue
			}
			for _, e := range s.dlq.popBatch(8) {
				c := e.class
				wait, ok := s.backend.TrySubmit(e.arr.App, e.arr.Lib)
				if !ok {
					// Queue refilled between the utilization read and the
					// submit; park it again without burning retry budget
					// (no mapping round ran).
					if !s.dlq.add(e) {
						s.backend.NoteDLQExpired()
						s.deliver(e.arr.notify, Result{
							App: e.arr.App.Name, Class: c, Verdict: VerdictExpired,
							Latency: time.Since(e.arr.t),
						})
					}
					continue
				}
				s.watch(e.arr, c, wait, e.attempts+1)
			}
		}
	}
}

// deliver finalizes one arrival: ledger counters, the per-request
// notify channel (capacity 1, never blocks), then the results channel
// (which may block — backpressure toward the stages when the consumer
// lags).
func (s *Server) deliver(notify chan Result, r Result) {
	switch r.Verdict {
	case VerdictAdmitted:
		s.c.admitted.Add(1)
		if r.Recovered {
			s.c.recovered.Add(1)
			s.c.recoveredByClass[clampClass(r.Class)].Add(1)
		}
	case VerdictRejected:
		s.c.rejected.Add(1)
	case VerdictShed:
		s.c.shedByClass[clampClass(r.Class)].Add(1)
	case VerdictExpired:
		s.c.expired.Add(1)
		s.c.expiredByClass[clampClass(r.Class)].Add(1)
	}
	if notify != nil {
		select {
		case notify <- r:
		default: // impossible: one outcome, capacity 1 — but never block
		}
	}
	s.results <- r
}

// Shutdown drains the server gracefully: Submit starts refusing, every
// stage drains in order, in-flight outcomes are awaited, remaining DLQ
// entries expire, the results channel closes, and finally the backend
// is closed. The consumer must keep draining Results() while Shutdown
// runs. It returns the final Report; calling it twice is an error on
// the second call's part — it returns the same report without
// re-draining.
func (s *Server) Shutdown() Report {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return s.Report()
	}
	s.closed = true
	s.mu.Unlock()

	close(s.ingress)
	s.stages.Wait() // classify drained ingress; dispatch drained classes
	// Stop the DLQ retry loop BEFORE waiting on watchers: the loop
	// spawns watcher goroutines, and a WaitGroup must not grow while
	// being waited on. The AIMD controller rides the same quit signal.
	close(s.quit)
	if s.dlq != nil {
		<-s.dlqDone
	}
	if s.aimdDone != nil {
		<-s.aimdDone
	}
	s.watchers.Wait() // every submitted outcome delivered (or parked in DLQ)
	if s.dlq != nil {
		for _, e := range s.dlq.drain() {
			s.backend.NoteDLQExpired()
			s.deliver(e.arr.notify, Result{
				App:     e.arr.App.Name,
				Class:   e.class,
				Verdict: VerdictExpired,
				Latency: time.Since(e.arr.t),
			})
		}
	}
	close(s.results)
	s.backend.Close()
	return s.Report()
}

// Report is the server's lifetime ledger plus the live window.
type Report struct {
	// Submitted counts arrivals accepted by Submit. The ledger identity
	// is Submitted = Admitted + Rejected + Shed + Expired — every
	// accepted arrival ends in exactly one bucket (Recovered is the
	// DLQ-recovered subset of Admitted, not a fifth bucket).
	Submitted uint64
	Admitted  uint64
	Recovered uint64
	Rejected  uint64
	Expired   uint64
	// ShedByClass splits the sheds per QoS class; Shed() sums them.
	ShedByClass [model.NumPriorities]uint64
	// RecoveredByClass and ExpiredByClass split the DLQ outcomes per QoS
	// class, so a per-class budget squeeze is visible in the ledger.
	RecoveredByClass, ExpiredByClass [model.NumPriorities]uint64
	// ShedBuffer, ShedBreaker, ShedQueue and ShedDeadline attribute
	// sheds to the stage that dropped: full class buffer, open circuit
	// breaker, saturated backend queue, expired request deadline.
	ShedBuffer, ShedBreaker, ShedQueue, ShedDeadline uint64
	// BreakerOpens counts breaker trips; BreakerState names the state at
	// report time; DLQDepth is the queue's total depth at report time
	// (nonzero only mid-run) and DLQDepthByClass splits it per lane.
	BreakerOpens    uint64
	BreakerState    string
	DLQDepth        int
	DLQDepthByClass [model.NumPriorities]int
	// AdmitRate is the dispatch throttle's rate at report time (0 =
	// unlimited); RateCuts and RateRaises count the AIMD controller's
	// multiplicative cuts and additive raises.
	AdmitRate            float64
	RateCuts, RateRaises uint64
	// Window is the rolling-window snapshot of end-to-end admission
	// latency at report time; Service is the same window over service
	// latency only (backend submission → outcome, excluding queue wait)
	// — the AIMD controller's and latency breaker's feedback signal.
	Window  WindowSnapshot
	Service WindowSnapshot
}

// Shed sums the per-class shed counts.
func (r Report) Shed() uint64 {
	var n uint64
	for _, c := range r.ShedByClass {
		n += c
	}
	return n
}

// LedgerOK checks the exactly-one-outcome identity.
func (r Report) LedgerOK() bool {
	return r.Admitted+r.Rejected+r.Shed()+r.Expired == r.Submitted
}

// Report snapshots the ledger. Only after Shutdown is it guaranteed
// stable and ledger-complete; mid-run it is a live view.
func (s *Server) Report() Report {
	r := Report{
		Submitted:    s.c.submitted.Load(),
		Admitted:     s.c.admitted.Load(),
		Recovered:    s.c.recovered.Load(),
		Rejected:     s.c.rejected.Load(),
		Expired:      s.c.expired.Load(),
		ShedBuffer:   s.c.shedBuffer.Load(),
		ShedBreaker:  s.c.shedBreaker.Load(),
		ShedQueue:    s.c.shedQueue.Load(),
		ShedDeadline: s.c.shedDeadline.Load(),
		BreakerOpens: s.breaker.Opens(),
		BreakerState: s.breaker.State().String(),
		AdmitRate:    s.rate.load(),
		RateCuts:     s.c.rateCuts.Load(),
		RateRaises:   s.c.rateRaises.Load(),
		Window:       s.win.Snapshot(),
		Service:      s.svcWin.Snapshot(),
	}
	for c := range r.ShedByClass {
		r.ShedByClass[c] = s.c.shedByClass[c].Load()
		r.RecoveredByClass[c] = s.c.recoveredByClass[c].Load()
		r.ExpiredByClass[c] = s.c.expiredByClass[c].Load()
	}
	if s.dlq != nil {
		r.DLQDepth = s.dlq.depth()
		for c := range r.DLQDepthByClass {
			r.DLQDepthByClass[c] = s.dlq.depthOf(model.Priority(c))
		}
	}
	return r
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
