package stream

import (
	"sort"
	"sync"
	"time"
)

// windowBuckets subdivide the metrics window for the admissions/sec
// rate, like the breaker's ring: counting survives any arrival rate in
// O(buckets) memory.
const windowBuckets = 20

// windowSampleCap bounds the latency reservoir. Percentiles are
// computed over the most recent samples only; under extreme admission
// rates the reservoir is a sliding sample of the window rather than a
// census, which is what a live p50/p99 wants anyway.
const windowSampleCap = 8192

// WindowSnapshot is a point-in-time view of the rolling metrics window.
type WindowSnapshot struct {
	// P50 and P99 are admission-latency percentiles (Submit → admitted
	// outcome) over the window's samples; zero when nothing was admitted.
	P50, P99 time.Duration
	// PerSec is the admission rate over the window.
	PerSec float64
	// Samples is how many admissions the percentile estimate is over.
	Samples int
}

// metricsWindow tracks rolling admission latency percentiles and rate.
// All methods are safe for concurrent use.
type metricsWindow struct {
	mu     sync.Mutex
	window time.Duration

	counts   [windowBuckets]int
	bucketAt time.Time
	cur      int

	samples []sample
	head    int
	full    bool

	now func() time.Time
}

type sample struct {
	t   time.Time
	lat time.Duration
}

func newMetricsWindow(window time.Duration) *metricsWindow {
	if window <= 0 {
		window = time.Second
	}
	w := &metricsWindow{
		window:  window,
		samples: make([]sample, 0, 1024),
		now:     time.Now,
	}
	w.bucketAt = w.now()
	return w
}

func (w *metricsWindow) advanceLocked(now time.Time) {
	span := w.window / windowBuckets
	steps := int(now.Sub(w.bucketAt) / span)
	if steps <= 0 {
		return
	}
	if steps > windowBuckets {
		steps = windowBuckets
	}
	for i := 0; i < steps; i++ {
		w.cur = (w.cur + 1) % windowBuckets
		w.counts[w.cur] = 0
	}
	w.bucketAt = now
}

// add records one admission and its end-to-end latency.
func (w *metricsWindow) add(lat time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := w.now()
	w.advanceLocked(now)
	w.counts[w.cur]++
	s := sample{t: now, lat: lat}
	if len(w.samples) < windowSampleCap && !w.full {
		w.samples = append(w.samples, s)
		return
	}
	w.full = true
	w.samples[w.head] = s
	w.head = (w.head + 1) % windowSampleCap
}

// Snapshot computes the current window view.
func (w *metricsWindow) Snapshot() WindowSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := w.now()
	w.advanceLocked(now)
	var snap WindowSnapshot
	total := 0
	for _, c := range w.counts {
		total += c
	}
	snap.PerSec = float64(total) / w.window.Seconds()
	cutoff := now.Add(-w.window)
	lats := make([]time.Duration, 0, len(w.samples))
	for _, s := range w.samples {
		if s.t.After(cutoff) {
			lats = append(lats, s.lat)
		}
	}
	snap.Samples = len(lats)
	if len(lats) == 0 {
		return snap
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	snap.P50 = lats[len(lats)/2]
	p99 := (len(lats) * 99) / 100
	if p99 >= len(lats) {
		p99 = len(lats) - 1
	}
	snap.P99 = lats[p99]
	return snap
}
