package stream

import (
	"sync"
	"time"
)

// BreakerConfig tunes the server's circuit breaker. The breaker watches
// the outcomes of arrivals actually submitted to the backend (not the
// ones shed earlier): sustained rejections or latency breaches open it,
// and while open the server sheds Standard and BestEffort arrivals at
// the dispatch stage instead of burning mapping rounds on a saturated
// backend. Critical arrivals always pass through — their contract is
// blocking backpressure, not fail-fast.
type BreakerConfig struct {
	// Window is the rolling interval over which the failure ratio is
	// measured (default 500ms).
	Window time.Duration
	// MinSamples is the minimum number of outcomes inside the window
	// before the ratio can trip the breaker (default 20), so a single
	// early rejection cannot open it.
	MinSamples int
	// Ratio is the failure fraction that opens the breaker (default 0.5).
	Ratio float64
	// Latency, when positive, counts an admission whose service latency
	// (backend submission → outcome, excluding queue wait) exceeded this
	// as a breach even though it succeeded — sustained latency collapse
	// opens the breaker just like sustained rejection.
	Latency time.Duration
	// Cooldown is how long the breaker stays open before it half-opens
	// and lets probe arrivals through (default 250ms).
	Cooldown time.Duration
	// Probes is how many arrivals the half-open state admits; that many
	// consecutive successes close the breaker, any failure reopens it
	// (default 5).
	Probes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 500 * time.Millisecond
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 20
	}
	if c.Ratio <= 0 || c.Ratio > 1 {
		c.Ratio = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 250 * time.Millisecond
	}
	if c.Probes <= 0 {
		c.Probes = 5
	}
	return c
}

type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String names the state for reports and the /metricsz endpoint.
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// breakerBuckets subdivide the rolling window so the failure ratio
// decays smoothly without keeping a per-sample history: memory stays
// O(buckets) no matter the arrival rate.
const breakerBuckets = 10

// breaker is the classic three-state circuit breaker over a bucketed
// rolling failure ratio. All methods are safe for concurrent use.
type breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    breakerState
	openedAt time.Time
	buckets  [breakerBuckets]struct{ ok, fail int }
	bucketAt time.Time // start of the current bucket
	cur      int
	// probesOK counts consecutive half-open successes; probesSent counts
	// arrivals let through since half-opening.
	probesOK   int
	probesSent int
	opens      uint64
	// now is the clock, injectable for deterministic tests.
	now func() time.Time
}

func newBreaker(cfg BreakerConfig) *breaker {
	b := &breaker{cfg: cfg.withDefaults(), now: time.Now}
	b.bucketAt = b.now()
	return b
}

// advanceLocked rotates the bucket ring to the current time, zeroing
// buckets that fell out of the window.
func (b *breaker) advanceLocked(now time.Time) {
	span := b.cfg.Window / breakerBuckets
	steps := int(now.Sub(b.bucketAt) / span)
	if steps <= 0 {
		return
	}
	if steps > breakerBuckets {
		steps = breakerBuckets
	}
	for i := 0; i < steps; i++ {
		b.cur = (b.cur + 1) % breakerBuckets
		b.buckets[b.cur] = struct{ ok, fail int }{}
	}
	b.bucketAt = now
}

// allow reports whether a non-critical arrival may proceed to the
// backend. Open sheds; half-open admits up to Probes arrivals.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.advanceLocked(now)
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probesOK = 0
		b.probesSent = 1
		return true
	default: // half-open
		if b.probesSent >= b.cfg.Probes {
			return false
		}
		b.probesSent++
		return true
	}
}

// record feeds one backend outcome into the breaker: fail is a
// rejection or a latency breach.
func (b *breaker) record(fail bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.advanceLocked(now)
	if fail {
		b.buckets[b.cur].fail++
	} else {
		b.buckets[b.cur].ok++
	}
	switch b.state {
	case breakerClosed:
		ok, bad := 0, 0
		for _, bk := range b.buckets {
			ok += bk.ok
			bad += bk.fail
		}
		total := ok + bad
		if total >= b.cfg.MinSamples && float64(bad) >= b.cfg.Ratio*float64(total) {
			b.openLocked(now)
		}
	case breakerHalfOpen:
		if fail {
			b.openLocked(now)
			return
		}
		b.probesOK++
		if b.probesOK >= b.cfg.Probes {
			b.state = breakerClosed
			b.buckets = [breakerBuckets]struct{ ok, fail int }{}
		}
	}
}

// openLocked trips the breaker and clears the window so the half-open
// verdict starts from a blank slate.
func (b *breaker) openLocked(now time.Time) {
	b.state = breakerOpen
	b.openedAt = now
	b.opens++
	b.probesOK = 0
	b.probesSent = 0
	b.buckets = [breakerBuckets]struct{ ok, fail int }{}
}

// Opens reports how many times the breaker tripped.
func (b *breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// State reports the current state, advancing open→half-open if the
// cooldown has elapsed (read-only callers see the same state an allow
// call would act on).
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen && b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return breakerHalfOpen
	}
	return b.state
}
