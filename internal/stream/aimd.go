package stream

import (
	"math"
	"sync/atomic"
	"time"
)

// AIMDConfig tunes the adaptive admission-rate controller: a classic
// additive-increase / multiplicative-decrease loop over the server's
// rolling service-latency window. Every Interval the controller reads
// the windowed p99 service latency (backend submission → outcome,
// excluding ingress/class-buffer queue wait — under backpressure queue
// wait grows with buffer depth at any sub-capacity rate, so steering on
// end-to-end latency would drive the rate to the floor); while it holds
// under the SLO (and the circuit breaker is closed) the dispatch rate
// rises by Increase arrivals/sec, and on a breach — p99 over the SLO,
// or an open breaker — the rate is cut to Decrease of the measured
// operating point (at most once per window span, so one lingering spike
// costs one cut, not one per tick). The resulting sawtooth hovers just
// under the backend's real capacity,
// which is the whole point: the operator declares a latency objective
// instead of hand-tuning a static -rate against a mesh whose capacity
// moves with faults, preemption and load mix.
//
// A zero SLO disables the controller and the server falls back to
// Options.Rate (static token bucket, or unlimited when that is 0 too).
type AIMDConfig struct {
	// SLO is the p99 service-latency objective; > 0 enables the
	// controller.
	SLO time.Duration
	// MinRate and MaxRate clamp the controlled rate in arrivals/sec
	// (defaults 50 and 1e6). The controller starts at MaxRate —
	// optimistic, so an unsaturated server pays no throttle tax — and
	// cuts multiplicatively on the first breach.
	MinRate float64
	MaxRate float64
	// Increase is the additive raise per interval in arrivals/sec
	// (default 200).
	Increase float64
	// Decrease is the multiplicative cut factor in (0, 1) applied on a
	// breach (default 0.7).
	Decrease float64
	// Interval is the control period (default 20ms). It should cover a
	// few window buckets: reacting faster than the p99 estimate moves
	// just amplifies noise.
	Interval time.Duration
}

func (c AIMDConfig) withDefaults() AIMDConfig {
	if c.MinRate <= 0 {
		c.MinRate = 50
	}
	if c.MaxRate <= 0 {
		c.MaxRate = 1e6
	}
	if c.MaxRate < c.MinRate {
		c.MaxRate = c.MinRate
	}
	if c.Increase <= 0 {
		c.Increase = 200
	}
	if c.Decrease <= 0 || c.Decrease >= 1 {
		c.Decrease = 0.7
	}
	if c.Interval <= 0 {
		c.Interval = 20 * time.Millisecond
	}
	return c
}

// enabled reports whether the controller runs.
func (c AIMDConfig) enabled() bool { return c.SLO > 0 }

// rateBox holds the live dispatch rate as float bits so the classify
// stage can read it lock-free on every arrival.
type rateBox struct{ bits atomic.Uint64 }

func (r *rateBox) load() float64   { return math.Float64frombits(r.bits.Load()) }
func (r *rateBox) store(v float64) { r.bits.Store(math.Float64bits(v)) }

// aimdLoop is the controller goroutine: one rate decision per interval
// until the server quits. It never touches the stage channels — the
// classify stage reads the rate box on its own schedule — so a stalled
// pipeline cannot wedge the controller or vice versa.
func (s *Server) aimdLoop() {
	defer close(s.aimdDone)
	cfg := s.opts.AIMD
	t := time.NewTicker(cfg.Interval)
	defer t.Stop()
	var lastCut time.Time
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			snap := s.svcWin.Snapshot()
			rate := s.rate.load()
			if (snap.Samples > 0 && snap.P99 > cfg.SLO) || s.breaker.State() == breakerOpen {
				// One cut per window epoch: a single spike stays in the
				// rolling window for its whole span, and cutting again on
				// every tick it lingers would collapse the rate to the floor
				// (Decrease^(window/interval) per spike) instead of backing
				// off once and watching the effect.
				if time.Since(lastCut) < s.opts.Window {
					continue
				}
				lastCut = time.Now()
				// Cut from the measured operating point, not the nominal
				// ceiling: while the bucket is not binding (rate far above
				// actual throughput), cutting the nominal rate changes
				// nothing for many ticks and then overshoots. min(rate,
				// admitted/sec) is where the system actually runs.
				if snap.PerSec > 0 && snap.PerSec < rate {
					rate = snap.PerSec
				}
				rate *= cfg.Decrease
				if rate < cfg.MinRate {
					rate = cfg.MinRate
				}
				s.c.rateCuts.Add(1)
			} else {
				rate += cfg.Increase
				if rate > cfg.MaxRate {
					rate = cfg.MaxRate
				}
				s.c.rateRaises.Add(1)
			}
			s.rate.store(rate)
		}
	}
}

// AdmitRate is the dispatch throttle's current arrivals/sec: the AIMD
// controller's live rate, the static Options.Rate, or 0 for unlimited.
func (s *Server) AdmitRate() float64 { return s.rate.load() }
