package stream

import (
	"errors"
	"fmt"
	"time"

	"rtsm/internal/churn"
	"rtsm/internal/core"
	"rtsm/internal/fleet"
	"rtsm/internal/journal"
	"rtsm/internal/manager"
	"rtsm/internal/workload"
)

// SoakOptions configures a synthetic soak run: a generator pushes
// Arrivals applications through a Server over a freshly built backend,
// a collector keeps at most Resident admissions alive (stopping the
// oldest beyond that, the same churn discipline as internal/churn), and
// the run ends with a graceful Shutdown and a ledger check.
type SoakOptions struct {
	// Arrivals is how many applications the generator submits.
	Arrivals int
	// Mesh is each platform's side length (default 12); RegionSize
	// shards its commit path (default 3); Seed feeds the generator.
	Mesh       int
	RegionSize int
	Seed       int64
	// Meshes federates the backend across this many platforms behind a
	// fleet router; 0 or 1 uses the single manager pipeline.
	Meshes int
	// Workers and Queue size each backend pipeline (fleet runs split
	// them evenly, at least one each); Batch enables batched admission.
	Workers int
	Queue   int
	Batch   int
	// Catalogue, MaxUtil, PeriodNs and PrioMix shape the synthetic
	// arrivals exactly as in internal/churn.
	Catalogue int
	MaxUtil   float64
	PeriodNs  int64
	PrioMix   string
	// Resident caps concurrently running admissions; beyond it the
	// collector stops the oldest (default 4× Workers).
	Resident int
	// Server carries the stage tuning (class buffers, throttle, DLQ,
	// breaker, window). Server.Backend is ignored; the soak builds it.
	Server Options
	// Journal attaches a durable journal to the manager (single-mesh
	// runs only, as in internal/churn).
	Journal *journal.Writer
}

func (o SoakOptions) withDefaults() SoakOptions {
	if o.Mesh <= 0 {
		o.Mesh = 12
	}
	if o.RegionSize < 0 {
		o.RegionSize = 0
	} else if o.RegionSize == 0 {
		o.RegionSize = 3
	}
	if o.Workers < 1 {
		o.Workers = 4
	}
	if o.Queue < 1 {
		o.Queue = 16 * o.Workers
	}
	if o.Catalogue < 1 {
		o.Catalogue = 6
	}
	if o.MaxUtil <= 0 {
		o.MaxUtil = 0.12
	}
	if o.PeriodNs <= 0 {
		o.PeriodNs = 40_000
	}
	if o.Resident <= 0 {
		o.Resident = 4 * o.Workers
	}
	return o
}

// SoakResult is one soak run's full accounting.
type SoakResult struct {
	// Report is the server's ledger; Stats the backend's counters.
	Report Report
	Stats  manager.Stats
	// Elapsed spans Submit of the first arrival to the end of Shutdown.
	Elapsed time.Duration
	// LedgerErr is non-nil when the exactly-one-outcome identity or the
	// backend's own invariants failed — a soak with a LedgerErr proves
	// nothing else.
	LedgerErr error
	// ConfigErr reports unusable options; nothing ran.
	ConfigErr error
}

// ArrivalsPerSec is the sustained end-to-end arrival throughput: every
// submitted arrival — admitted, rejected, shed or expired — divided by
// the wall-clock run time.
func (r SoakResult) ArrivalsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Report.Submitted) / r.Elapsed.Seconds()
}

// AdmissionsPerSec is the sustained admission throughput.
func (r SoakResult) AdmissionsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Report.Admitted) / r.Elapsed.Seconds()
}

// RunSoak builds the backend, runs the soak and returns the accounting.
// It is the engine behind cmd/serve, the -race soak suite and the
// BenchmarkStreamServe pair.
func RunSoak(o SoakOptions) SoakResult {
	o = o.withDefaults()
	if o.Meshes > 1 && o.Journal != nil {
		return SoakResult{ConfigErr: fmt.Errorf("stream: journaling is per-manager; a fleet soak would interleave %d hash chains", o.Meshes)}
	}

	var backend Backend
	var mgrs []*manager.Manager
	endpointRegions := 1
	if o.Meshes > 1 {
		perWorkers := max(1, o.Workers/o.Meshes)
		perQueue := max(1, o.Queue/o.Meshes)
		specs := make([]workload.MeshSpec, o.Meshes)
		for i := range specs {
			specs[i] = workload.MeshSpec{
				W: o.Mesh, H: o.Mesh,
				Seed:       o.Seed + int64(i)*101,
				RegionSize: o.RegionSize,
			}
		}
		plats := workload.SyntheticFleetPlatforms(specs)
		if o.RegionSize > 0 {
			endpointRegions = plats[0].RegionCount()
		}
		cfgs := make([]fleet.MeshConfig, len(plats))
		for i, plat := range plats {
			m := manager.New(plat, core.Config{})
			m.SetMappingReuse(true)
			m.SetRepair(true)
			mgrs = append(mgrs, m)
			cfgs[i] = fleet.MeshConfig{Manager: m, Workers: perWorkers, Queue: perQueue, Batch: o.Batch}
		}
		f, err := fleet.New(fleet.Config{Seed: o.Seed}, cfgs...)
		if err != nil {
			return SoakResult{ConfigErr: err}
		}
		backend = NewFleetBackend(f)
	} else {
		plat := workload.SyntheticRegionPlatform(o.Mesh, o.Mesh, o.Seed, o.RegionSize)
		if o.RegionSize > 0 {
			endpointRegions = plat.RegionCount()
		}
		m := manager.New(plat, core.Config{})
		m.SetMappingReuse(true)
		m.SetRepair(true)
		if o.Journal != nil {
			m.SetJournal(o.Journal)
		}
		mgrs = append(mgrs, m)
		pipe := manager.NewPipeline(m, o.Workers, o.Queue)
		if o.Batch > 1 {
			pipe.SetBatch(o.Batch)
		}
		backend = NewPipelineBackend(m, pipe)
	}

	sopts := o.Server
	sopts.Backend = backend
	srv, err := New(sopts)
	if err != nil {
		return SoakResult{ConfigErr: err}
	}

	// Collector: drains every Result and recycles residents so the mesh
	// never clogs — without departures a soak admits Resident apps and
	// then rejects everything, measuring nothing.
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		var residents []string
		stop := func(name string) {
			err := backend.Stop(name)
			switch {
			case err == nil:
			case errors.Is(err, manager.ErrRelocating):
				residents = append(residents, name) // retry on a later round
			default:
				// Typically "not running": preempted and evicted already.
			}
		}
		for res := range srv.Results() {
			if res.Verdict != VerdictAdmitted {
				continue
			}
			residents = append(residents, res.App)
			if len(residents) > o.Resident {
				oldest := residents[0]
				residents = residents[1:]
				stop(oldest)
			}
		}
	}()

	co := churn.Options{
		Catalogue: o.Catalogue,
		MaxUtil:   o.MaxUtil,
		PeriodNs:  o.PeriodNs,
		PrioMix:   o.PrioMix,
	}
	start := time.Now()
	for i := 0; i < o.Arrivals; i++ {
		app, lib := co.Arrival(i, endpointRegions)
		if err := srv.Submit(app, lib); err != nil {
			break
		}
	}
	rep := srv.Shutdown()
	<-collectorDone
	elapsed := time.Since(start)

	r := SoakResult{Report: rep, Stats: backend.Stats(), Elapsed: elapsed}
	if !rep.LedgerOK() {
		r.LedgerErr = fmt.Errorf("stream: ledger broken: admitted %d + rejected %d + shed %d + expired %d != submitted %d",
			rep.Admitted, rep.Rejected, rep.Shed(), rep.Expired, rep.Submitted)
		return r
	}
	for i, m := range mgrs {
		if err := m.CheckInvariants(); err != nil {
			r.LedgerErr = fmt.Errorf("stream: mesh %d invariants: %w", i, err)
			return r
		}
	}
	return r
}
