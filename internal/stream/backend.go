package stream

import (
	"rtsm/internal/fleet"
	"rtsm/internal/manager"
	"rtsm/internal/model"
)

// Backend is what the server admits into: a single mesh behind a
// manager pipeline, or a whole fleet. Submit blocks for backpressure
// and TrySubmit sheds instead; both return a wait closure that delivers
// the arrival's single outcome, so the server's per-arrival watcher is
// backend-agnostic without any channel-adapter goroutines.
type Backend interface {
	// Submit enqueues with blocking backpressure; err is non-nil only
	// when the backend cannot take the arrival at all (closed,
	// duplicate name).
	Submit(app *model.Application, lib *model.Library) (func() manager.Outcome, error)
	// TrySubmit enqueues without blocking; false sheds the arrival
	// (full queue — counted in the backend's per-class shed stats — or
	// a closed backend).
	TrySubmit(app *model.Application, lib *model.Library) (func() manager.Outcome, bool)
	// Utilization is the backend's reserved-capacity estimate in [0, 1];
	// the DLQ gates retries on it.
	Utilization() float64
	// Stop departs a resident, freeing its reservations.
	Stop(name string) error
	// NoteShed, NoteDLQRecovered and NoteDLQExpired report server-stage
	// events into the backend's manager.Stats ledger.
	NoteShed(p model.Priority)
	NoteDLQRecovered()
	NoteDLQExpired()
	// Stats is the backend's aggregated admission counters.
	Stats() manager.Stats
	// Close shuts the backend down, draining queued admissions.
	Close()
}

// PipelineBackend adapts a single manager + pipeline pair to Backend.
type PipelineBackend struct {
	m    *manager.Manager
	pipe *manager.Pipeline
}

// NewPipelineBackend wraps a manager and its pipeline. The backend owns
// neither until Close, which closes the pipeline (the manager needs no
// teardown).
func NewPipelineBackend(m *manager.Manager, pipe *manager.Pipeline) *PipelineBackend {
	return &PipelineBackend{m: m, pipe: pipe}
}

// Submit implements Backend.
func (b *PipelineBackend) Submit(app *model.Application, lib *model.Library) (func() manager.Outcome, error) {
	ch, err := b.pipe.Submit(app, lib)
	if err != nil {
		return nil, err
	}
	return func() manager.Outcome { return <-ch }, nil
}

// TrySubmit implements Backend.
func (b *PipelineBackend) TrySubmit(app *model.Application, lib *model.Library) (func() manager.Outcome, bool) {
	ch, ok := b.pipe.TrySubmit(app, lib)
	if !ok {
		return nil, false
	}
	return func() manager.Outcome { return <-ch }, true
}

// Utilization implements Backend.
func (b *PipelineBackend) Utilization() float64 { return b.m.LoadEstimate().Utilization() }

// Stop implements Backend.
func (b *PipelineBackend) Stop(name string) error { return b.m.Stop(name) }

// NoteShed implements Backend.
func (b *PipelineBackend) NoteShed(p model.Priority) { b.m.NoteShed(p) }

// NoteDLQRecovered implements Backend.
func (b *PipelineBackend) NoteDLQRecovered() { b.m.NoteDLQRecovered() }

// NoteDLQExpired implements Backend.
func (b *PipelineBackend) NoteDLQExpired() { b.m.NoteDLQExpired() }

// Stats implements Backend.
func (b *PipelineBackend) Stats() manager.Stats { return b.m.Stats() }

// Close implements Backend.
func (b *PipelineBackend) Close() { b.pipe.Close() }

// FleetBackend adapts a multi-mesh fleet to Backend.
type FleetBackend struct {
	f *fleet.Fleet
}

// NewFleetBackend wraps a fleet; Close closes it.
func NewFleetBackend(f *fleet.Fleet) *FleetBackend { return &FleetBackend{f: f} }

// Submit implements Backend.
func (b *FleetBackend) Submit(app *model.Application, lib *model.Library) (func() manager.Outcome, error) {
	ch, err := b.f.Submit(app, lib)
	if err != nil {
		return nil, err
	}
	return func() manager.Outcome { return (<-ch).Outcome }, nil
}

// TrySubmit implements Backend.
func (b *FleetBackend) TrySubmit(app *model.Application, lib *model.Library) (func() manager.Outcome, bool) {
	ch, ok := b.f.TrySubmit(app, lib)
	if !ok {
		return nil, false
	}
	return func() manager.Outcome { return (<-ch).Outcome }, true
}

// Utilization implements Backend.
func (b *FleetBackend) Utilization() float64 { return b.f.Utilization() }

// Stop implements Backend.
func (b *FleetBackend) Stop(name string) error { return b.f.Stop(name) }

// NoteShed implements Backend.
func (b *FleetBackend) NoteShed(p model.Priority) { b.f.NoteShed(p) }

// NoteDLQRecovered implements Backend.
func (b *FleetBackend) NoteDLQRecovered() { b.f.NoteDLQRecovered() }

// NoteDLQExpired implements Backend.
func (b *FleetBackend) NoteDLQExpired() { b.f.NoteDLQExpired() }

// Stats implements Backend: the member meshes' counters summed.
func (b *FleetBackend) Stats() manager.Stats {
	var st manager.Stats
	for i := 0; i < b.f.Meshes(); i++ {
		st.Add(b.f.Manager(i).Stats())
	}
	return st
}

// Close implements Backend.
func (b *FleetBackend) Close() { b.f.Close() }
