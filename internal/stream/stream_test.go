package stream

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rtsm/internal/manager"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

// fakeClock drives breaker/window tests deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerOpensHalfOpensCloses(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(BreakerConfig{
		Window: 500 * time.Millisecond, MinSamples: 10, Ratio: 0.5,
		Cooldown: 100 * time.Millisecond, Probes: 3,
	})
	b.now = clk.now
	b.bucketAt = clk.now()

	// Below MinSamples nothing trips, even at 100% failure.
	for i := 0; i < 9; i++ {
		b.record(true)
	}
	if !b.allow() {
		t.Fatal("breaker tripped below MinSamples")
	}
	b.record(true) // 10th failure: ratio 1.0 over ≥ MinSamples
	if b.allow() {
		t.Fatal("breaker stayed closed under sustained failure")
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}
	// Still open inside the cooldown.
	clk.advance(50 * time.Millisecond)
	if b.allow() {
		t.Fatal("breaker half-opened before the cooldown")
	}
	// Past the cooldown: half-open admits exactly Probes arrivals.
	clk.advance(60 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if !b.allow() {
			t.Fatalf("probe %d refused in half-open", i)
		}
	}
	if b.allow() {
		t.Fatal("half-open admitted more than Probes arrivals")
	}
	// Successful probes close it.
	for i := 0; i < 3; i++ {
		b.record(false)
	}
	if b.State() != breakerClosed {
		t.Fatal("breaker did not close after successful probes")
	}
	if !b.allow() {
		t.Fatal("closed breaker refused an arrival")
	}
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(2000, 0)}
	b := newBreaker(BreakerConfig{
		Window: 500 * time.Millisecond, MinSamples: 5, Ratio: 0.5,
		Cooldown: 100 * time.Millisecond, Probes: 3,
	})
	b.now = clk.now
	b.bucketAt = clk.now()
	for i := 0; i < 5; i++ {
		b.record(true)
	}
	clk.advance(150 * time.Millisecond)
	if !b.allow() {
		t.Fatal("no probe after cooldown")
	}
	b.record(true) // the probe fails
	if b.State() != breakerOpen {
		t.Fatal("failed probe did not reopen the breaker")
	}
	if b.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", b.Opens())
	}
}

// TestBreakerHalfOpenProbesConcurrent pins the half-open contract under
// contention (run with -race): no matter how many goroutines race
// allow(), exactly Probes arrivals pass while half-open — no thundering
// herd onto a recovering backend — and concurrent probe outcomes settle
// the state exactly once: all-success closes it, any failure reopens it
// exactly one more time.
func TestBreakerHalfOpenProbesConcurrent(t *testing.T) {
	clk := &fakeClock{t: time.Unix(4000, 0)}
	const probes = 5
	b := newBreaker(BreakerConfig{
		Window: 500 * time.Millisecond, MinSamples: 5, Ratio: 0.5,
		Cooldown: 100 * time.Millisecond, Probes: probes,
	})
	b.now = clk.now
	b.bucketAt = clk.now()

	trip := func() {
		for i := 0; i < 5; i++ {
			b.record(true)
		}
		if b.allow() {
			t.Fatal("breaker did not trip")
		}
		clk.advance(150 * time.Millisecond)
	}
	// hammer races many goroutines against allow() and returns how many
	// arrivals were admitted.
	hammer := func() int {
		var admitted atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if b.allow() {
						admitted.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		return int(admitted.Load())
	}

	// Round 1: exactly Probes admitted, concurrent successes close it.
	trip()
	if got := hammer(); got != probes {
		t.Fatalf("half-open admitted %d arrivals, want exactly %d", got, probes)
	}
	var wg sync.WaitGroup
	for i := 0; i < probes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.record(false)
		}()
	}
	wg.Wait()
	if b.State() != breakerClosed {
		t.Fatalf("breaker %s after %d concurrent successful probes, want closed", b.State(), probes)
	}
	opens := b.Opens()

	// Round 2: exactly Probes admitted again, and one failure among the
	// concurrent probe outcomes reopens it exactly once, whatever the
	// interleaving (4 successes cannot close a Probes=5 breaker).
	trip()
	opens = b.Opens() // the trip itself is one open
	if got := hammer(); got != probes {
		t.Fatalf("second half-open admitted %d arrivals, want exactly %d", got, probes)
	}
	for i := 0; i < probes; i++ {
		wg.Add(1)
		go func(fail bool) {
			defer wg.Done()
			b.record(fail)
		}(i == 0)
	}
	wg.Wait()
	if b.State() != breakerOpen {
		t.Fatalf("breaker %s after a failed probe, want open", b.State())
	}
	if b.Opens() != opens+1 {
		t.Fatalf("opens = %d after one failed probe round, want %d", b.Opens(), opens+1)
	}
	if b.allow() {
		t.Fatal("reopened breaker admitted an arrival inside the cooldown")
	}
}

func TestBreakerRatioDecaysOutOfWindow(t *testing.T) {
	clk := &fakeClock{t: time.Unix(3000, 0)}
	b := newBreaker(BreakerConfig{
		Window: 500 * time.Millisecond, MinSamples: 10, Ratio: 0.5,
		Cooldown: 100 * time.Millisecond, Probes: 3,
	})
	b.now = clk.now
	b.bucketAt = clk.now()
	// Nine failures, then the whole window elapses: the stale failures
	// must not combine with fresh successes into a trip.
	for i := 0; i < 9; i++ {
		b.record(true)
	}
	clk.advance(600 * time.Millisecond)
	for i := 0; i < 20; i++ {
		b.record(false)
	}
	b.record(true)
	if b.State() != breakerClosed {
		t.Fatal("stale failures outside the window tripped the breaker")
	}
}

func TestWindowPercentilesAndRate(t *testing.T) {
	clk := &fakeClock{t: time.Unix(4000, 0)}
	w := newMetricsWindow(time.Second)
	w.now = clk.now
	w.bucketAt = clk.now()
	for i := 1; i <= 100; i++ {
		w.add(time.Duration(i) * time.Millisecond)
		clk.advance(time.Millisecond)
	}
	snap := w.Snapshot()
	if snap.Samples != 100 {
		t.Fatalf("samples = %d, want 100", snap.Samples)
	}
	if snap.P50 < 45*time.Millisecond || snap.P50 > 55*time.Millisecond {
		t.Fatalf("p50 = %v, want ~50ms", snap.P50)
	}
	if snap.P99 < 95*time.Millisecond || snap.P99 > 100*time.Millisecond {
		t.Fatalf("p99 = %v, want ~99ms", snap.P99)
	}
	if snap.PerSec < 90 || snap.PerSec > 110 {
		t.Fatalf("rate = %.1f/s, want ~100/s", snap.PerSec)
	}
	// Everything ages out of the window.
	clk.advance(2 * time.Second)
	snap = w.Snapshot()
	if snap.Samples != 0 || snap.PerSec != 0 {
		t.Fatalf("stale window still reports %d samples at %.1f/s", snap.Samples, snap.PerSec)
	}
}

func TestDLQPerClassBudgetsAndOrder(t *testing.T) {
	// Capacity 8 splits into quotas Critical 8, Standard 4, BestEffort 2.
	d := newDLQ(8)
	mk := func(c model.Priority, i int) dlqEntry {
		app, lib := workload.Synthetic(workload.SynthOptions{Shape: workload.ShapeChain, Processes: 3, MaxUtil: 0.1, PeriodNs: 40_000})
		app.Name = fmt.Sprintf("dlq-%s-%d", c, i)
		return dlqEntry{arr: Arrival{App: app, Lib: lib}, class: c, attempts: 1}
	}
	// BestEffort pressure fills only its own lane...
	for i := 0; i < 2; i++ {
		if !d.add(mk(model.BestEffort, i)) {
			t.Fatalf("BestEffort add %d refused below its quota", i)
		}
	}
	if d.add(mk(model.BestEffort, 2)) {
		t.Fatal("BestEffort add above its quota accepted")
	}
	// ...and never costs Critical a slot.
	for i := 0; i < 8; i++ {
		if !d.add(mk(model.Critical, i)) {
			t.Fatalf("Critical add %d refused despite BestEffort pressure", i)
		}
	}
	if d.add(mk(model.Critical, 8)) {
		t.Fatal("Critical add above its quota accepted")
	}
	if d.depth() != 10 || d.depthOf(model.BestEffort) != 2 || d.depthOf(model.Critical) != 8 {
		t.Fatalf("depths: total %d, be %d, crit %d", d.depth(), d.depthOf(model.BestEffort), d.depthOf(model.Critical))
	}
	// Retry rounds drain the highest class first, FIFO within a class.
	batch := d.popBatch(9)
	if len(batch) != 9 {
		t.Fatalf("popBatch returned %d entries, want 9", len(batch))
	}
	for i := 0; i < 8; i++ {
		if want := fmt.Sprintf("dlq-critical-%d", i); batch[i].arr.App.Name != want {
			t.Fatalf("batch[%d] = %s, want %s", i, batch[i].arr.App.Name, want)
		}
	}
	if batch[8].arr.App.Name != "dlq-best-effort-0" {
		t.Fatalf("batch[8] = %s, want the oldest BestEffort entry", batch[8].arr.App.Name)
	}
	rest := d.drain()
	if len(rest) != 1 || rest[0].arr.App.Name != "dlq-best-effort-1" {
		t.Fatalf("drain returned %+v", rest)
	}
	if d.depth() != 0 {
		t.Fatal("drain left entries behind")
	}
}

// fakeBackend scripts backend behaviour so server-stage semantics are
// testable without mesh physics. Mode transitions are atomic.
type fakeBackend struct {
	// mode: 0 admit, 1 retryable rejection, 2 structural rejection,
	// 3 queue full (TrySubmit refuses).
	mode atomic.Int32
	util atomic.Uint64 // float64 bits… keep it simple: percent
	shed [model.NumPriorities]atomic.Uint64
	rec  atomic.Uint64
	exp  atomic.Uint64
	subs atomic.Uint64
}

const (
	fakeAdmit = iota
	fakeRejectRetryable
	fakeRejectStructural
	fakeFull
)

// behavior resolves an arrival's scripted fate: a name tag ("admit-…",
// "reject-…", "structural-…", "full-…") wins over the global mode, so
// tests that interleave behaviours stay deterministic even though
// dispatch is asynchronous.
func (f *fakeBackend) behavior(app *model.Application) int32 {
	switch {
	case strings.HasPrefix(app.Name, "admit-"):
		return fakeAdmit
	case strings.HasPrefix(app.Name, "reject-"):
		return fakeRejectRetryable
	case strings.HasPrefix(app.Name, "structural-"):
		return fakeRejectStructural
	case strings.HasPrefix(app.Name, "full-"):
		return fakeFull
	}
	return f.mode.Load()
}

func (f *fakeBackend) outcome(app *model.Application) manager.Outcome {
	switch f.behavior(app) {
	case fakeAdmit:
		return manager.Outcome{App: app.Name, Admitted: true, Priority: app.QoS.Priority}
	case fakeRejectRetryable:
		return manager.Outcome{App: app.Name, Priority: app.QoS.Priority,
			Err: &manager.RejectionError{App: app.Name, Reason: "mesh full", Retryable: true}}
	default:
		return manager.Outcome{App: app.Name, Priority: app.QoS.Priority,
			Err: &manager.RejectionError{App: app.Name, Reason: "no implementation", Retryable: false}}
	}
}

func (f *fakeBackend) Submit(app *model.Application, lib *model.Library) (func() manager.Outcome, error) {
	f.subs.Add(1)
	out := f.outcome(app)
	return func() manager.Outcome { return out }, nil
}

func (f *fakeBackend) TrySubmit(app *model.Application, lib *model.Library) (func() manager.Outcome, bool) {
	if f.behavior(app) == fakeFull {
		f.shed[clampClass(app.QoS.Priority)].Add(1)
		return nil, false
	}
	f.subs.Add(1)
	out := f.outcome(app)
	return func() manager.Outcome { return out }, true
}

func (f *fakeBackend) Utilization() float64      { return float64(f.util.Load()) / 100 }
func (f *fakeBackend) Stop(string) error         { return nil }
func (f *fakeBackend) NoteShed(p model.Priority) { f.shed[clampClass(p)].Add(1) }
func (f *fakeBackend) NoteDLQRecovered()         { f.rec.Add(1) }
func (f *fakeBackend) NoteDLQExpired()           { f.exp.Add(1) }
func (f *fakeBackend) Stats() manager.Stats      { return manager.Stats{} }
func (f *fakeBackend) Close()                    {}

func synthArrival(i int, prio model.Priority) (*model.Application, *model.Library) {
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape: workload.ShapeChain, Processes: 3, Seed: int64(i % 4),
		MaxUtil: 0.1, PeriodNs: 40_000, Priority: prio,
	})
	app.Name = fmt.Sprintf("fake-%d-%d", prio, i)
	return app, lib
}

// taggedArrival names the app so fakeBackend.behavior scripts its fate
// deterministically regardless of dispatch timing.
func taggedArrival(tag string, i int, prio model.Priority) (*model.Application, *model.Library) {
	app, lib := synthArrival(i, prio)
	app.Name = fmt.Sprintf("%s-%d-%d", tag, prio, i)
	return app, lib
}

// collect drains a server's results into a slice until the channel
// closes.
func collect(srv *Server) (<-chan []Result, func()) {
	out := make(chan []Result, 1)
	go func() {
		var all []Result
		for r := range srv.Results() {
			all = append(all, r)
		}
		out <- all
	}()
	return out, func() {}
}

// TestServerExactlyOneOutcome pins the ledger identity on the fake
// backend across every verdict path, including duplicate result
// detection per app.
func TestServerExactlyOneOutcome(t *testing.T) {
	fb := &fakeBackend{}
	srv, err := New(Options{Backend: fb, Ingress: 16, ClassBuf: 16,
		// A breaker would (correctly) trip on the scripted rejection
		// storm and shed everything; this test wants every verdict path
		// live, so it is effectively disabled.
		Breaker: BreakerConfig{MinSamples: 1 << 30}})
	if err != nil {
		t.Fatal(err)
	}
	done, _ := collect(srv)
	const n = 300
	// Name tags script each arrival's fate so every verdict path is
	// exercised deterministically; priority cycles independently of the
	// tag so each behaviour hits every class.
	tags := []string{"admit", "structural", "full"}
	for i := 0; i < n; i++ {
		app, lib := taggedArrival(tags[i%3], i, model.Priority((i/3)%model.NumPriorities))
		if err := srv.Submit(app, lib); err != nil {
			t.Fatal(err)
		}
	}
	rep := srv.Shutdown()
	all := <-done
	if !rep.LedgerOK() {
		t.Fatalf("ledger broken: %+v", rep)
	}
	if rep.Submitted != n {
		t.Fatalf("submitted = %d, want %d", rep.Submitted, n)
	}
	if uint64(len(all)) != rep.Submitted {
		t.Fatalf("results delivered %d, want %d", len(all), rep.Submitted)
	}
	seen := make(map[string]int)
	for _, r := range all {
		seen[r.App]++
	}
	for app, c := range seen {
		if c != 1 {
			t.Fatalf("app %s got %d results", app, c)
		}
	}
	if rep.Admitted == 0 || rep.Rejected == 0 || rep.Shed() == 0 {
		t.Fatalf("expected a mix of verdicts, got %+v", rep)
	}
	if err := srv.Submit(synthArrival(n, model.BestEffort)); err == nil {
		t.Fatal("Submit after Shutdown succeeded")
	}
}

// TestServerDLQRecoversAfterLoadDrops scripts the dead-letter cycle:
// retryable rejections park, nothing retries while utilization is
// high, and once it drops the entries are re-submitted and admitted
// with Recovered set — each still yielding exactly one outcome.
func TestServerDLQRecoversAfterLoadDrops(t *testing.T) {
	fb := &fakeBackend{}
	fb.mode.Store(fakeRejectRetryable)
	fb.util.Store(95)
	srv, err := New(Options{
		Backend: fb, Ingress: 16, ClassBuf: 256,
		DLQ: 64, DLQBelow: 0.5, DLQRetries: 3, DLQEvery: time.Millisecond,
		Breaker: BreakerConfig{MinSamples: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	done, _ := collect(srv)
	const n = 20
	for i := 0; i < n; i++ {
		if err := srv.Submit(synthArrival(i, model.Standard)); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until every arrival is parked in the DLQ.
	deadline := time.Now().Add(5 * time.Second)
	for srv.dlq.depth() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d := srv.dlq.depth(); d != n {
		t.Fatalf("DLQ parked %d of %d", d, n)
	}
	// Load drops and the backend heals: retries must recover.
	fb.mode.Store(fakeAdmit)
	fb.util.Store(10)
	for srv.c.recovered.Load() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	rep := srv.Shutdown()
	all := <-done
	if rep.Recovered != n || rep.Admitted != n {
		t.Fatalf("recovered %d admitted %d, want %d each\n%+v", rep.Recovered, rep.Admitted, n, rep)
	}
	if !rep.LedgerOK() {
		t.Fatalf("ledger broken: %+v", rep)
	}
	if uint64(len(all)) != rep.Submitted {
		t.Fatalf("results delivered %d, want %d", len(all), rep.Submitted)
	}
	for _, r := range all {
		if !r.Recovered || r.Verdict != VerdictAdmitted {
			t.Fatalf("result %+v, want recovered admission", r)
		}
	}
	if fb.rec.Load() != n {
		t.Fatalf("backend ledger saw %d recoveries, want %d", fb.rec.Load(), n)
	}
}

// TestServerDLQExpiresOnShutdownAndBudget pins the two expiry paths:
// entries still parked at Shutdown expire with one outcome each, and an
// entry whose retries keep capacity-failing expires once its budget is
// spent.
func TestServerDLQExpiresOnShutdownAndBudget(t *testing.T) {
	// Path 1: parked at shutdown.
	fb := &fakeBackend{}
	fb.mode.Store(fakeRejectRetryable)
	fb.util.Store(95) // never retries
	srv, err := New(Options{Backend: fb, Ingress: 8, ClassBuf: 256,
		DLQ: 64, DLQBelow: 0.5, DLQRetries: 5, DLQEvery: time.Millisecond,
		Breaker: BreakerConfig{MinSamples: 1 << 30}})
	if err != nil {
		t.Fatal(err)
	}
	done, _ := collect(srv)
	const n = 10
	for i := 0; i < n; i++ {
		if err := srv.Submit(synthArrival(i, model.BestEffort)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.dlq.depth() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	rep := srv.Shutdown()
	all := <-done
	if rep.Expired != n {
		t.Fatalf("expired = %d, want %d: %+v", rep.Expired, n, rep)
	}
	if !rep.LedgerOK() || uint64(len(all)) != rep.Submitted {
		t.Fatalf("ledger broken: %+v (%d results)", rep, len(all))
	}
	if fb.exp.Load() != n {
		t.Fatalf("backend ledger saw %d expiries, want %d", fb.exp.Load(), n)
	}

	// Path 2: retry budget spent while load stays low but the mesh keeps
	// capacity-rejecting.
	fb2 := &fakeBackend{}
	fb2.mode.Store(fakeRejectRetryable)
	fb2.util.Store(10) // retries run immediately — and keep failing
	srv2, err := New(Options{Backend: fb2, Ingress: 8, ClassBuf: 256,
		DLQ: 64, DLQBelow: 0.5, DLQRetries: 2, DLQEvery: time.Millisecond,
		Breaker: BreakerConfig{MinSamples: 1 << 30}})
	if err != nil {
		t.Fatal(err)
	}
	done2, _ := collect(srv2)
	if err := srv2.Submit(synthArrival(0, model.Standard)); err != nil {
		t.Fatal(err)
	}
	for srv2.c.expired.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	rep2 := srv2.Shutdown()
	all2 := <-done2
	if rep2.Expired != 1 || len(all2) != 1 || all2[0].Verdict != VerdictExpired {
		t.Fatalf("budget expiry: %+v / %+v", rep2, all2)
	}
	if !rep2.LedgerOK() {
		t.Fatalf("ledger broken: %+v", rep2)
	}
}

// TestServerBreakerShedsNonCritical scripts sustained rejection until
// the breaker opens, then checks Standard/BestEffort shed at dispatch
// while Critical still reaches the backend.
func TestServerBreakerShedsNonCritical(t *testing.T) {
	fb := &fakeBackend{}
	fb.mode.Store(fakeRejectStructural)
	srv, err := New(Options{
		Backend: fb, Ingress: 8, ClassBuf: 8,
		Breaker: BreakerConfig{Window: time.Second, MinSamples: 10, Ratio: 0.5,
			Cooldown: time.Hour, Probes: 1}, // open stays open for the test
	})
	if err != nil {
		t.Fatal(err)
	}
	done, _ := collect(srv)
	// Feed failures until the breaker trips.
	deadline := time.Now().Add(5 * time.Second)
	i := 0
	for srv.breaker.Opens() == 0 && time.Now().Before(deadline) {
		if err := srv.Submit(synthArrival(i, model.Standard)); err != nil {
			t.Fatal(err)
		}
		i++
		time.Sleep(time.Millisecond)
	}
	if srv.breaker.Opens() == 0 {
		t.Fatal("breaker never opened under sustained rejection")
	}
	subsBefore := fb.subs.Load()
	// With the breaker open, non-critical arrivals shed at dispatch and
	// Critical still submits.
	fb.mode.Store(fakeAdmit)
	for j := 0; j < 10; j++ {
		if err := srv.Submit(synthArrival(1000+j, model.BestEffort)); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Submit(synthArrival(2000, model.Critical)); err != nil {
		t.Fatal(err)
	}
	rep := srv.Shutdown()
	all := <-done
	if rep.ShedBreaker == 0 {
		t.Fatalf("open breaker shed nothing: %+v", rep)
	}
	if fb.subs.Load() == subsBefore {
		t.Fatal("Critical arrival never reached the backend through the open breaker")
	}
	if !rep.LedgerOK() || uint64(len(all)) != rep.Submitted {
		t.Fatalf("ledger broken: %+v (%d results)", rep, len(all))
	}
	crit := 0
	for _, r := range all {
		if r.Class == model.Critical {
			crit++
			if r.Verdict == VerdictShed {
				t.Fatal("Critical arrival was shed")
			}
		}
	}
	if crit != 1 {
		t.Fatalf("critical results = %d, want 1", crit)
	}
}
