package stream

import (
	"sync"

	"rtsm/internal/model"
)

// dlqEntry is one capacity-rejected arrival parked for retry: the spec
// was structurally fine, the mesh was just full when it arrived.
type dlqEntry struct {
	arr Arrival
	// class is the arrival's clamped admission class; it selects the
	// per-class quota the entry occupies.
	class model.Priority
	// attempts counts backend submissions so far (≥ 1: the original
	// rejected one).
	attempts int
}

// dlq is the dead-letter queue: per-class bounded FIFOs of
// capacity-rejected arrivals that the server re-enqueues once measured
// utilization drops below the retry threshold. Each class has its own
// quota — Critical the full configured capacity, Standard half,
// BestEffort a quarter — so a flood of BestEffort rejections can fill
// only its own lane and never expires a parked Critical retry. Retry
// rounds drain the highest class first, mirroring the dispatch stage's
// strict priority. All methods are safe for concurrent use.
type dlq struct {
	mu      sync.Mutex
	entries [model.NumPriorities][]dlqEntry
	caps    [model.NumPriorities]int
}

// newDLQ sizes the per-class quotas from the configured capacity:
// Critical gets all of it, Standard half, BestEffort a quarter (min 1
// each), the same asymmetry as the class buffers.
func newDLQ(capacity int) *dlq {
	d := &dlq{}
	d.caps[model.Critical] = capacity
	d.caps[model.Standard] = max(1, capacity/2)
	d.caps[model.BestEffort] = max(1, capacity/4)
	return d
}

// add parks an entry in its class lane; false means that class's quota
// is spent and the entry must expire instead. Other classes' pressure
// never counts against it.
func (d *dlq) add(e dlqEntry) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := clampClass(e.class)
	if len(d.entries[c]) >= d.caps[c] {
		return false
	}
	d.entries[c] = append(d.entries[c], e)
	return true
}

// popBatch removes up to n entries for a retry round, highest class
// first and oldest first within a class — a recovering mesh readmits
// its parked Critical work before any BestEffort backlog.
func (d *dlq) popBatch(n int) []dlqEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []dlqEntry
	for c := model.NumPriorities - 1; c >= 0 && n > 0; c-- {
		take := n
		if take > len(d.entries[c]) {
			take = len(d.entries[c])
		}
		if take == 0 {
			continue
		}
		out = append(out, d.entries[c][:take]...)
		d.entries[c] = append(d.entries[c][:0], d.entries[c][take:]...)
		n -= take
	}
	return out
}

// drain empties every lane — the shutdown path, where each remaining
// entry expires. Highest class first, for deterministic expiry order.
func (d *dlq) drain() []dlqEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []dlqEntry
	for c := model.NumPriorities - 1; c >= 0; c-- {
		out = append(out, d.entries[c]...)
		d.entries[c] = nil
	}
	return out
}

// depth reports the total parked count across classes.
func (d *dlq) depth() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, lane := range d.entries {
		n += len(lane)
	}
	return n
}

// depthOf reports one class lane's parked count.
func (d *dlq) depthOf(c model.Priority) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries[clampClass(c)])
}
