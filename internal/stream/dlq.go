package stream

import "sync"

// dlqEntry is one capacity-rejected arrival parked for retry: the spec
// was structurally fine, the mesh was just full when it arrived.
type dlqEntry struct {
	arr Arrival
	// attempts counts backend submissions so far (≥ 1: the original
	// rejected one).
	attempts int
}

// dlq is the dead-letter queue: a bounded FIFO of capacity-rejected
// arrivals that the server re-enqueues once measured utilization drops
// below the retry threshold. All methods are safe for concurrent use.
type dlq struct {
	mu      sync.Mutex
	entries []dlqEntry
	cap     int
}

func newDLQ(capacity int) *dlq {
	return &dlq{cap: capacity}
}

// add parks an entry; false means the queue is full and the entry must
// expire instead.
func (d *dlq) add(e dlqEntry) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.entries) >= d.cap {
		return false
	}
	d.entries = append(d.entries, e)
	return true
}

// popBatch removes up to n oldest entries for a retry round.
func (d *dlq) popBatch(n int) []dlqEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n > len(d.entries) {
		n = len(d.entries)
	}
	if n == 0 {
		return nil
	}
	out := make([]dlqEntry, n)
	copy(out, d.entries)
	d.entries = append(d.entries[:0], d.entries[n:]...)
	return out
}

// drain empties the queue — the shutdown path, where every remaining
// entry expires.
func (d *dlq) drain() []dlqEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := d.entries
	d.entries = nil
	return out
}

// depth reports the current queue length.
func (d *dlq) depth() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}
