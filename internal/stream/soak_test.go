package stream

import (
	"errors"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"rtsm/internal/churn"
	"rtsm/internal/core"
	"rtsm/internal/journal"
	"rtsm/internal/manager"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

// TestServerSoakSaturationBreakerAndDLQ drives the full stage chain over
// a real mesh in three phases. Phase A saturates: no resident ever
// departs, so admissions fill the mesh, capacity rejections mount, the
// breaker opens and retryable rejections park in the DLQ (utilization is
// high, so nothing retries). Phase B departs residents until utilization
// drops below the DLQ threshold and parked entries recover. Phase C
// shuts down gracefully and checks the ledger: exactly one outcome per
// arrival, BestEffort shed at least as hard as Standard, Critical never
// shed. Run with -race: the phases exercise every stage concurrently.
func TestServerSoakSaturationBreakerAndDLQ(t *testing.T) {
	plat := workload.SyntheticRegionPlatform(8, 8, 99, 0)
	m := manager.New(plat, core.Config{})
	m.SetMappingReuse(true)
	m.SetRepair(true)
	pipe := manager.NewPipeline(m, 4, 8)
	backend := NewPipelineBackend(m, pipe)
	srv, err := New(Options{
		Backend: backend, Ingress: 64, ClassBuf: 8,
		DLQ: 512, DLQBelow: 0.5, DLQRetries: 10_000, DLQEvery: time.Millisecond,
		Breaker: BreakerConfig{Window: 250 * time.Millisecond, MinSamples: 8,
			Ratio: 0.5, Cooldown: 25 * time.Millisecond, Probes: 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Collector: record every result and remember admitted names so
	// phase B can depart them.
	var (
		resMu    sync.Mutex
		results  []Result
		admitted []string
	)
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for r := range srv.Results() {
			resMu.Lock()
			results = append(results, r)
			if r.Verdict == VerdictAdmitted {
				admitted = append(admitted, r.App)
			}
			resMu.Unlock()
		}
	}()

	// Phase A: saturating burst. Apps are fat (MaxUtil 0.3) so a handful
	// fill the mesh; the even class mix exposes the per-class buffer
	// asymmetry.
	co := churn.Options{Catalogue: 4, MaxUtil: 0.3, PeriodNs: 40_000, PrioMix: "1:1:1"}
	deadline := time.Now().Add(30 * time.Second)
	subs := 0
	for (srv.breaker.Opens() == 0 || srv.dlq.depth() == 0) && time.Now().Before(deadline) {
		app, lib := co.Arrival(subs, 1)
		if err := srv.Submit(app, lib); err != nil {
			t.Fatal(err)
		}
		subs++
	}
	if srv.breaker.Opens() == 0 {
		t.Fatal("saturating burst never opened the breaker")
	}
	if srv.dlq.depth() == 0 {
		t.Fatal("no capacity-rejected arrival was parked in the DLQ")
	}

	// Phase B: depart residents until utilization drops and the DLQ
	// recovers at least one parked arrival. Recovered entries re-admit
	// and are departed on the next round, so utilization stays low.
	for srv.c.recovered.Load() == 0 && time.Now().Before(deadline) {
		resMu.Lock()
		batch := admitted
		admitted = nil
		resMu.Unlock()
		for _, name := range batch {
			switch err := backend.Stop(name); {
			case err == nil:
			case errors.Is(err, manager.ErrRelocating):
				resMu.Lock()
				admitted = append(admitted, name)
				resMu.Unlock()
			default:
				// Already gone (e.g. evicted); nothing to retry.
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if srv.c.recovered.Load() == 0 {
		t.Fatal("DLQ never recovered after load dropped")
	}

	// Phase C: graceful shutdown and the ledger.
	rep := srv.Shutdown()
	<-collectorDone
	if !rep.LedgerOK() {
		t.Fatalf("ledger broken: %+v", rep)
	}
	if rep.Submitted != uint64(subs) {
		t.Fatalf("submitted = %d, want %d", rep.Submitted, subs)
	}
	if uint64(len(results)) != rep.Submitted {
		t.Fatalf("results delivered %d, want %d", len(results), rep.Submitted)
	}
	seen := make(map[string]int, len(results))
	for _, r := range results {
		seen[r.App]++
	}
	for app, c := range seen {
		if c != 1 {
			t.Fatalf("app %s got %d outcomes, want exactly 1", app, c)
		}
	}
	if rep.BreakerOpens == 0 {
		t.Fatalf("breaker opens unreported: %+v", rep)
	}
	if rep.Recovered == 0 || rep.Admitted < rep.Recovered {
		t.Fatalf("recovery accounting broken: %+v", rep)
	}
	if rep.ShedByClass[model.BestEffort] == 0 {
		t.Fatalf("saturation shed no BestEffort arrivals: %+v", rep)
	}
	if rep.ShedByClass[model.Critical] != 0 {
		t.Fatalf("Critical arrivals were shed: %+v", rep)
	}
	// Buffer-shed onset order: the first BestEffort arrival dropped at
	// its class buffer must precede (in submission order) the first
	// Standard one — BestEffort has the smallest buffer and dispatch
	// drains it last, so it overflows first. Queue and breaker sheds hit
	// whatever class is dispatched when the queue fills or the breaker
	// opens, so they carry no onset ordering. Arrival names are churn's
	// "app-<i>-<class>".
	firstShed := map[model.Priority]int{}
	for _, r := range results {
		if r.Verdict != VerdictShed || r.ShedAt != ShedAtBuffer {
			continue
		}
		i, err := strconv.Atoi(strings.Split(r.App, "-")[1])
		if err != nil {
			t.Fatalf("unparseable arrival name %q: %v", r.App, err)
		}
		if cur, ok := firstShed[r.Class]; !ok || i < cur {
			firstShed[r.Class] = i
		}
	}
	if beFirst, ok := firstShed[model.BestEffort]; ok {
		if stdFirst, ok := firstShed[model.Standard]; ok && stdFirst < beFirst {
			t.Fatalf("Standard shed from arrival %d, before BestEffort's first shed at %d",
				stdFirst, beFirst)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Cross-check the backend's ledger against the server's.
	st := backend.Stats()
	if st.DLQRecovered != rep.Recovered || st.DLQExpired != rep.Expired {
		t.Fatalf("backend DLQ ledger (rec %d, exp %d) != server (%d, %d)",
			st.DLQRecovered, st.DLQExpired, rep.Recovered, rep.Expired)
	}
}

// TestRunSoakSmoke runs the packaged soak end to end for both backend
// shapes and checks that the ledger and invariants hold.
func TestRunSoakSmoke(t *testing.T) {
	for _, meshes := range []int{1, 2} {
		res := RunSoak(SoakOptions{
			Arrivals: 1200, Mesh: 8, Seed: 7, Meshes: meshes,
			Workers: 2, Queue: 8, Catalogue: 4, MaxUtil: 0.2,
			PrioMix: "60:30:10", Resident: 6,
			Server: Options{Ingress: 32, ClassBuf: 16,
				DLQ: 128, DLQBelow: 0.6, DLQEvery: time.Millisecond},
		})
		if res.ConfigErr != nil {
			t.Fatalf("meshes=%d: %v", meshes, res.ConfigErr)
		}
		if res.LedgerErr != nil {
			t.Fatalf("meshes=%d: %v", meshes, res.LedgerErr)
		}
		if res.Report.Submitted != 1200 {
			t.Fatalf("meshes=%d: submitted = %d, want 1200", meshes, res.Report.Submitted)
		}
		if res.Report.Admitted == 0 {
			t.Fatalf("meshes=%d: nothing admitted: %+v", meshes, res.Report)
		}
		if res.ArrivalsPerSec() <= 0 || res.AdmissionsPerSec() <= 0 {
			t.Fatalf("meshes=%d: throughput not measured: %+v", meshes, res)
		}
	}
}

// TestRunSoakRejectsFleetJournal pins the config guard: journaling is a
// per-manager hash chain, so a fleet soak with a journal must refuse to
// run rather than interleave chains.
func TestRunSoakRejectsFleetJournal(t *testing.T) {
	// The guard fires before the writer is ever used, so a zero writer
	// is enough to trip it.
	res := RunSoak(SoakOptions{Arrivals: 1, Meshes: 2, Journal: &journal.Writer{}})
	if res.ConfigErr == nil {
		t.Fatal("fleet soak with a journal was accepted")
	}
}
