package rtsm

import (
	"io"
	"testing"

	"rtsm/internal/churn"
)

// The fault-churn pair prices the durability layer: the identical
// churn-with-faults scenario runs once bare and once with the
// hash-chained admission journal streaming every reservation event
// (admissions, departures, fault releases, relocations, evictions,
// fault flips) through the writer goroutine. Journaling happens inside
// the commit's region-locked sections — that ordering is what makes
// crash replay bit-for-bit — so the bar is about how much of that
// critical-section work leaks into throughput: the journaled run must
// hold ≥0.9x the bare run's admissions/sec. CI uploads the pair as
// BENCH_8.json; TestBenchTrajectory gates the checked-in number.
func benchmarkAdmissionFaultChurn(b *testing.B, journaled bool) {
	o := churn.Defaults()
	o.Apps = b.N
	o.FaultRate = 0.02 // a tile fault per ~50 arrivals keeps evacuation hot
	if journaled {
		o.Journal = io.Discard
	}
	b.ResetTimer()
	r := churn.Run(o)
	b.StopTimer()
	if r.ConfigErr != nil {
		b.Fatal(r.ConfigErr)
	}
	if r.LedgerErr != nil {
		b.Fatalf("ledger corrupted under benchmark load: %v", r.LedgerErr)
	}
	if r.JournalErr != nil {
		b.Fatalf("journal writer failed: %v", r.JournalErr)
	}
	if !r.Clean {
		b.Fatalf("ledger not pristine after churn: %d tiles, %d links drifted",
			len(r.Drift.Tiles), len(r.Drift.Links))
	}
	if elapsed := b.Elapsed(); elapsed > 0 {
		b.ReportMetric(float64(r.Stats.Admitted)/elapsed.Seconds(), "admissions/sec")
	}
	b.ReportMetric(float64(r.Stats.FaultsInjected), "faults")
	b.ReportMetric(float64(r.Stats.FaultRelocated), "relocated")
}

// BenchmarkAdmissionFaultChurnNoJournal is the baseline: fault churn
// with journaling off.
func BenchmarkAdmissionFaultChurnNoJournal(b *testing.B) { benchmarkAdmissionFaultChurn(b, false) }

// BenchmarkAdmissionFaultChurnJournal streams the journal during the
// identical scenario. Acceptance bar: ≥0.9x the bare admissions/sec.
func BenchmarkAdmissionFaultChurnJournal(b *testing.B) { benchmarkAdmissionFaultChurn(b, true) }
