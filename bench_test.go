// Package rtsm's root benchmarks regenerate the experiment suite under
// the Go benchmark harness: one benchmark per paper artefact (E1–E6) and
// per extended experiment (E7–E12); admission_bench_test.go adds the
// concurrent admission-pipeline benchmarks. Run with
//
//	go test -bench=. -benchmem
//
// EXPERIMENTS.md records a reference run of the whole suite.
package rtsm

import (
	"testing"

	"rtsm/internal/baseline"
	"rtsm/internal/core"
	"rtsm/internal/energy"
	"rtsm/internal/experiments"
	"rtsm/internal/gap"
	"rtsm/internal/manager"
	"rtsm/internal/sim"
	"rtsm/internal/workload"
)

// BenchmarkE1Fig1KPN measures construction of the HIPERLAN/2 application
// model (Figure 1).
func BenchmarkE1Fig1KPN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		app := workload.Hiperlan2(experiments.DefaultMode)
		if len(app.Channels) != 6 {
			b.Fatal("wrong channel count")
		}
	}
}

// BenchmarkE2Table1Library measures construction of the Table 1
// implementation catalogue.
func BenchmarkE2Table1Library(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lib := workload.Hiperlan2Library(experiments.DefaultMode)
		if lib.Processes() != 4 {
			b.Fatal("wrong library")
		}
	}
}

// BenchmarkE3Fig2Platform measures construction of the Figure 2 MPSoC.
func BenchmarkE3Fig2Platform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plat := workload.Hiperlan2Platform()
		if len(plat.Tiles) != 6 {
			b.Fatal("wrong platform")
		}
	}
}

// BenchmarkE4Table2Step2 measures the steps that produce Table 2: one full
// mapping run of the worked example (step 2 is inseparable from the state
// steps 1 and 3 maintain around it).
func BenchmarkE4Table2Step2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.MapHiperlan2(experiments.DefaultMode, core.Config{})
		if err != nil || len(res.Trace.Step2) == 0 {
			b.Fatalf("no step-2 trace: %v", err)
		}
	}
}

// BenchmarkE5Fig3BufferSizing isolates step 4: building the mapped CSDF
// graph and sizing its buffers for a fixed placement.
func BenchmarkE5Fig3BufferSizing(b *testing.B) {
	res, err := experiments.MapHiperlan2(experiments.DefaultMode, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	app := res.Mapping.App
	lib := workload.Hiperlan2Library(experiments.DefaultMode)
	var placement []core.PlacedProcess
	for _, p := range app.MappableProcesses() {
		placement = append(placement, core.PlacedProcess{
			Process: p.Name,
			Impl:    res.Mapping.Impl[p.ID],
			Tile:    res.Platform.Tile(res.Mapping.Tile[p.ID]).Name,
		})
	}
	plat := workload.Hiperlan2Platform()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fin, err := core.FinishAssignment(lib, core.Config{}, app, plat, placement)
		if err != nil || !fin.Feasible {
			b.Fatalf("finish failed: %v", err)
		}
	}
}

// BenchmarkE6MapperRuntime is the paper's §4.5 measurement: one complete
// run-time mapping of the HIPERLAN/2 receiver (paper: <4 ms on a 100 MHz
// ARM926; the shape claim is "a small constant cost at application
// start").
func BenchmarkE6MapperRuntime(b *testing.B) {
	app := workload.Hiperlan2(experiments.DefaultMode)
	lib := workload.Hiperlan2Library(experiments.DefaultMode)
	plat := workload.Hiperlan2Platform()
	m := core.NewMapper(lib)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.Map(app, plat)
		if err != nil || !res.Feasible {
			b.Fatalf("mapping failed: %v", err)
		}
	}
}

// BenchmarkE7RuntimeVsDesignTime measures the design-time baseline flow
// for one mode (map worst case, freeze, re-verify under actual mode).
func BenchmarkE7RuntimeVsDesignTime(b *testing.B) {
	worst := workload.Hiperlan2Modes[6]
	actual := workload.Hiperlan2Modes[0]
	worstApp := workload.Hiperlan2(worst)
	worstLib := workload.Hiperlan2Library(worst)
	app := workload.Hiperlan2(actual)
	lib := workload.Hiperlan2Library(actual)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plat := workload.Hiperlan2Platform()
		res, err := baseline.DesignTime(worstLib, lib, core.Config{}, worstApp, app, plat, plat)
		if err != nil || !res.Feasible {
			b.Fatalf("design-time flow failed: %v", err)
		}
	}
}

// BenchmarkE8QualityVsOptimal measures one exact branch-and-bound solve on
// a 5-process instance, the E8 reference cost.
func BenchmarkE8QualityVsOptimal(b *testing.B) {
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape: workload.ShapeChain, Processes: 5, Seed: 0})
	plat := workload.SyntheticPlatform(3, 3, 0)
	solver := &gap.Solver{Lib: lib, Params: energy.DefaultParams()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Optimal(app, plat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9ScalingMesh measures mapping 12 processes onto an 8×8 mesh
// (the platform-size axis of E9).
func BenchmarkE9ScalingMesh(b *testing.B) {
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape: workload.ShapeChain, Processes: 12, Seed: 77})
	plat := workload.SyntheticPlatform(8, 8, 77)
	m := core.NewMapper(lib)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Map(app, plat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9ScalingProcesses measures mapping 32 processes onto a 6×6
// mesh (the application-size axis of E9).
func BenchmarkE9ScalingProcesses(b *testing.B) {
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape: workload.ShapeChain, Processes: 32, Seed: 78})
	plat := workload.SyntheticPlatform(6, 6, 78)
	m := core.NewMapper(lib)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Map(app, plat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10GreedyOnly times the step-1-only ablation against
// BenchmarkE6MapperRuntime's full pipeline.
func BenchmarkE10GreedyOnly(b *testing.B) {
	app := workload.Hiperlan2(experiments.DefaultMode)
	lib := workload.Hiperlan2Library(experiments.DefaultMode)
	plat := workload.Hiperlan2Platform()
	m := &core.Mapper{Lib: lib, Cfg: core.Config{NoStep2: true}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Map(app, plat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10BestImprovement times the best-improvement step-2 variant.
func BenchmarkE10BestImprovement(b *testing.B) {
	app := workload.Hiperlan2(experiments.DefaultMode)
	lib := workload.Hiperlan2Library(experiments.DefaultMode)
	plat := workload.Hiperlan2Platform()
	m := &core.Mapper{Lib: lib, Cfg: core.Config{Strategy: core.BestImprovement}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Map(app, plat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10BinPackBaseline times the Moreira-style bin-packing
// baseline.
func BenchmarkE10BinPackBaseline(b *testing.B) {
	app := workload.Hiperlan2(experiments.DefaultMode)
	lib := workload.Hiperlan2Library(experiments.DefaultMode)
	plat := workload.Hiperlan2Platform()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.BinPack(lib, core.Config{}, app, plat, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11SimValidate times the independent discrete-event check of a
// mapped HIPERLAN/2 receiver.
func BenchmarkE11SimValidate(b *testing.B) {
	app := workload.Hiperlan2(experiments.DefaultMode)
	res, err := experiments.MapHiperlan2(experiments.DefaultMode, core.Config{})
	if err != nil || !res.Feasible {
		b.Fatalf("mapping failed: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sim.Validate(app, res)
		if err != nil || !rep.MeetsThroughput {
			b.Fatalf("validation failed: %v", err)
		}
	}
}

// BenchmarkE12AdmissionChurn times one admission plus release cycle
// through the run-time manager on a loaded platform.
func BenchmarkE12AdmissionChurn(b *testing.B) {
	mgr := manager.New(workload.SyntheticPlatform(5, 5, 500), core.Config{})
	// Pre-load the platform with three residents.
	for i := 0; i < 3; i++ {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeChain, Processes: 4, Seed: int64(9000 + i), MaxUtil: 0.25})
		app.Name = resName(i)
		if _, err := mgr.Start(app, lib); err != nil {
			b.Fatal(err)
		}
	}
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape: workload.ShapeChain, Processes: 5, Seed: 9999, MaxUtil: 0.25})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app.Name = "churn"
		if _, err := mgr.Start(app, lib); err != nil {
			b.Fatal(err)
		}
		if err := mgr.Stop("churn"); err != nil {
			b.Fatal(err)
		}
	}
}

func resName(i int) string { return string(rune('a'+i)) + "-resident" }
