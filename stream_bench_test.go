package rtsm

import (
	"testing"

	"rtsm/internal/churn"
	"rtsm/internal/stream"
)

// The streaming-server pair prices the admission front-end: the same
// unsaturated all-Critical churn scenario runs once straight through
// the pipeline (internal/churn, the baseline) and once through the full
// staged server — ingress buffer, classifier, dispatch, per-arrival
// outcome watchers, rolling metrics window. All-Critical keeps the
// comparison honest: Critical is the blocking-backpressure path, so the
// server admits exactly the arrivals the bare pipeline would (nothing
// sheds) and the throughput difference is pure stage overhead. The bar
// is ≥0.8x the direct admissions/sec: the front-end must cost less than
// a fifth of the throughput it protects. CI uploads the pair as
// BENCH_9.json; TestBenchTrajectory gates the checked-in number.
func streamServeChurnOptions(n int) churn.Options {
	o := churn.Defaults()
	o.Apps = n
	o.Mesh = 8
	o.RegionSize = 3
	o.Catalogue = 4
	o.MaxUtil = 0.12
	o.Workers = 4
	o.Queue = 16
	o.Resident = 16
	o.PrioMix = "0:0:1"
	// The soak's manager runs without the preemption planner; keep the
	// baseline identical.
	o.Preempt = false
	return o
}

// BenchmarkStreamServeDirect is the baseline: the scenario straight
// through the admission pipeline with no server stages in front.
func BenchmarkStreamServeDirect(b *testing.B) {
	o := streamServeChurnOptions(b.N)
	b.ResetTimer()
	r := churn.Run(o)
	b.StopTimer()
	if r.ConfigErr != nil {
		b.Fatal(r.ConfigErr)
	}
	if r.LedgerErr != nil {
		b.Fatalf("ledger corrupted under benchmark load: %v", r.LedgerErr)
	}
	if elapsed := b.Elapsed(); elapsed > 0 {
		b.ReportMetric(float64(r.Stats.Admitted)/elapsed.Seconds(), "admissions/sec")
	}
}

// BenchmarkStreamServeServer runs the identical scenario through the
// staged streaming server. Acceptance bar: ≥0.8x the direct
// admissions/sec.
func BenchmarkStreamServeServer(b *testing.B) {
	b.ResetTimer()
	res := stream.RunSoak(stream.SoakOptions{
		Arrivals: b.N, Mesh: 8, RegionSize: 3, Seed: 123,
		Catalogue: 4, MaxUtil: 0.12, Workers: 4, Queue: 16, Resident: 16,
		PrioMix: "0:0:1",
		Server:  stream.Options{Ingress: 256, ClassBuf: 64},
	})
	b.StopTimer()
	if res.ConfigErr != nil {
		b.Fatal(res.ConfigErr)
	}
	if res.LedgerErr != nil {
		b.Fatalf("ledger corrupted under benchmark load: %v", res.LedgerErr)
	}
	if shed := res.Report.Shed(); shed > 0 {
		// Shedding would mean the server did less mapping work than the
		// baseline and the comparison measures nothing.
		b.Fatalf("unsaturated scenario shed %d arrivals", shed)
	}
	if elapsed := b.Elapsed(); elapsed > 0 {
		b.ReportMetric(float64(res.Report.Admitted)/elapsed.Seconds(), "admissions/sec")
	}
}
