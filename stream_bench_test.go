package rtsm

import (
	"testing"

	"time"

	"rtsm/internal/churn"
	"rtsm/internal/stream"
)

// The streaming-server pair prices the admission front-end: the same
// unsaturated all-Critical churn scenario runs once straight through
// the pipeline (internal/churn, the baseline) and once through the full
// staged server — ingress buffer, classifier, dispatch, per-arrival
// outcome watchers, rolling metrics window. All-Critical keeps the
// comparison honest: Critical is the blocking-backpressure path, so the
// server admits exactly the arrivals the bare pipeline would (nothing
// sheds) and the throughput difference is pure stage overhead. The bar
// is ≥0.8x the direct admissions/sec: the front-end must cost less than
// a fifth of the throughput it protects. CI uploads the pair as
// BENCH_9.json; TestBenchTrajectory gates the checked-in number.
func streamServeChurnOptions(n int) churn.Options {
	o := churn.Defaults()
	o.Apps = n
	o.Mesh = 8
	o.RegionSize = 3
	o.Catalogue = 4
	o.MaxUtil = 0.12
	o.Workers = 4
	o.Queue = 16
	o.Resident = 16
	o.PrioMix = "0:0:1"
	// The soak's manager runs without the preemption planner; keep the
	// baseline identical.
	o.Preempt = false
	return o
}

// The adaptive pair prices the AIMD overload controller against the
// best hand-tuned static rate on the same unsaturated all-Critical
// scenario (nothing sheds, both admit exactly b.N arrivals, so
// admissions/sec differences are pure throttle tax). The static
// baseline's 2000 arrivals/sec was hand-tuned: comfortably above the
// scenario's ~1k admissions/sec capacity while holding the 250ms
// service-latency SLO (reference runs record p99 ≈ 70–120ms), so the
// token bucket never bites and the baseline is the best a static rate
// can do here. The AIMD controller must find the same operating point
// on its own — raising while windowed p99 service latency holds under
// the same SLO, cutting on breaches — and hold ≥0.9x the static
// admissions/sec. CI uploads the pair as BENCH_10.json;
// TestBenchTrajectory gates the checked-in ratio.
func streamAdaptiveSoakOptions(n int) stream.SoakOptions {
	return stream.SoakOptions{
		Arrivals: n, Mesh: 8, RegionSize: 3, Seed: 123,
		Catalogue: 4, MaxUtil: 0.12, Workers: 4, Queue: 16, Resident: 16,
		PrioMix: "0:0:1",
	}
}

// BenchmarkStreamAdaptiveStatic is the hand-tuned baseline: a static
// dispatch rate above capacity, no controller.
func BenchmarkStreamAdaptiveStatic(b *testing.B) {
	o := streamAdaptiveSoakOptions(b.N)
	o.Server = stream.Options{Ingress: 256, ClassBuf: 64, Rate: 2000}
	b.ResetTimer()
	res := stream.RunSoak(o)
	b.StopTimer()
	reportAdaptive(b, res)
}

// BenchmarkStreamAdaptiveAIMD runs the identical scenario under the
// AIMD controller with a 250ms p99 service-latency SLO. Acceptance bar:
// ≥0.9x the static baseline's admissions/sec with the SLO held.
func BenchmarkStreamAdaptiveAIMD(b *testing.B) {
	const slo = 250 * time.Millisecond
	o := streamAdaptiveSoakOptions(b.N)
	o.Server = stream.Options{
		Ingress: 256, ClassBuf: 64,
		AIMD: stream.AIMDConfig{SLO: slo},
	}
	b.ResetTimer()
	res := stream.RunSoak(o)
	b.StopTimer()
	reportAdaptive(b, res)
	if p99 := res.Report.Service.P99; p99 > slo {
		b.Logf("windowed p99 service latency %v over the %v SLO at shutdown", p99, slo)
	}
}

func reportAdaptive(b *testing.B, res stream.SoakResult) {
	if res.ConfigErr != nil {
		b.Fatal(res.ConfigErr)
	}
	if res.LedgerErr != nil {
		b.Fatalf("ledger corrupted under benchmark load: %v", res.LedgerErr)
	}
	if shed := res.Report.Shed(); shed > 0 {
		b.Fatalf("unsaturated scenario shed %d arrivals", shed)
	}
	if elapsed := b.Elapsed(); elapsed > 0 {
		b.ReportMetric(float64(res.Report.Admitted)/elapsed.Seconds(), "admissions/sec")
	}
}

// BenchmarkStreamServeDirect is the baseline: the scenario straight
// through the admission pipeline with no server stages in front.
func BenchmarkStreamServeDirect(b *testing.B) {
	o := streamServeChurnOptions(b.N)
	b.ResetTimer()
	r := churn.Run(o)
	b.StopTimer()
	if r.ConfigErr != nil {
		b.Fatal(r.ConfigErr)
	}
	if r.LedgerErr != nil {
		b.Fatalf("ledger corrupted under benchmark load: %v", r.LedgerErr)
	}
	if elapsed := b.Elapsed(); elapsed > 0 {
		b.ReportMetric(float64(r.Stats.Admitted)/elapsed.Seconds(), "admissions/sec")
	}
}

// BenchmarkStreamServeServer runs the identical scenario through the
// staged streaming server. Acceptance bar: ≥0.8x the direct
// admissions/sec.
func BenchmarkStreamServeServer(b *testing.B) {
	b.ResetTimer()
	res := stream.RunSoak(stream.SoakOptions{
		Arrivals: b.N, Mesh: 8, RegionSize: 3, Seed: 123,
		Catalogue: 4, MaxUtil: 0.12, Workers: 4, Queue: 16, Resident: 16,
		PrioMix: "0:0:1",
		Server:  stream.Options{Ingress: 256, ClassBuf: 64},
	})
	b.StopTimer()
	if res.ConfigErr != nil {
		b.Fatal(res.ConfigErr)
	}
	if res.LedgerErr != nil {
		b.Fatalf("ledger corrupted under benchmark load: %v", res.LedgerErr)
	}
	if shed := res.Report.Shed(); shed > 0 {
		// Shedding would mean the server did less mapping work than the
		// baseline and the comparison measures nothing.
		b.Fatalf("unsaturated scenario shed %d arrivals", shed)
	}
	if elapsed := b.Elapsed(); elapsed > 0 {
		b.ReportMetric(float64(res.Report.Admitted)/elapsed.Seconds(), "admissions/sec")
	}
}
