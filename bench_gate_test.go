package rtsm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// benchArtifact mirrors the JSON that scripts/bench_json.sh emits. Only
// the headline-speedup fields are decoded; the per-benchmark metric
// maps are free-form and stay opaque here.
type benchArtifact struct {
	Pair       string                        `json:"pair"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
	// Speedup is the legacy two-benchmark form (BENCH_6).
	Speedup float64 `json:"speedup_admissions_per_sec"`
	// Baseline and Speedups are the generalized form (BENCH_7+).
	Baseline string             `json:"baseline"`
	Speedups map[string]float64 `json:"speedups_admissions_per_sec"`
}

// benchBar is one acceptance bar: the named speedup in the named
// artifact must stay at or above Min.
type benchBar struct {
	file string
	// key selects within Speedups; empty means the legacy scalar.
	key string
	min float64
}

// benchBars are the perf-trajectory acceptance bars. Each checked-in
// BENCH_*.json is a reference run of scripts/bench_json.sh; if an
// optimization PR regresses a headline speedup below its bar, the
// refreshed artifact fails this gate before CI ever uploads it. Bars
// are set with margin below the reference runs (BENCH_6 recorded
// ~1.96x, BENCH_7 well above its 1.7x/3x acceptance criteria) so
// ordinary benchmark noise does not flake the suite, while a real
// regression — losing batching, breaking the fleet router — still
// trips it.
var benchBars = []benchBar{
	{file: "BENCH_6.json", key: "", min: 1.3},
	{file: "BENCH_7.json", key: "BenchmarkFleetAdmission2", min: 1.7},
	{file: "BENCH_7.json", key: "BenchmarkFleetAdmission4", min: 3.0},
	// The journal must stay nearly free: ≥0.9x the bare fault-churn
	// throughput (the reference run records ~parity; see BENCH_8.json).
	{file: "BENCH_8.json", key: "BenchmarkAdmissionFaultChurnJournal", min: 0.9},
	// The streaming front-end must cost less than a fifth of the
	// admission throughput it protects (the reference run records
	// ~parity at 0.99x; see BENCH_9.json).
	{file: "BENCH_9.json", key: "BenchmarkStreamServeServer", min: 0.8},
	// The AIMD overload controller must find the hand-tuned static
	// operating point on its own: ≥0.9x the best static rate's
	// admissions/sec with the service-latency SLO held (the reference
	// run records 0.91x; see BENCH_10.json).
	{file: "BENCH_10.json", key: "BenchmarkStreamAdaptiveAIMD", min: 0.9},
}

// TestBenchTrajectory gates the checked-in benchmark artifacts: every
// BENCH_*.json at the repo root must be registered in benchBars (so new
// artifacts cannot land ungated) and every bar must hold. It reads the
// committed files only — it does not run benchmarks — so it is fast
// enough for the ordinary test suite and deterministic across hosts.
func TestBenchTrajectory(t *testing.T) {
	files, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no BENCH_*.json artifacts at the repo root; the reference runs must be checked in")
	}
	gated := make(map[string]bool)
	for _, bar := range benchBars {
		gated[bar.file] = true
	}
	arts := make(map[string]*benchArtifact)
	for _, f := range files {
		if !gated[f] {
			t.Errorf("%s is not registered in benchBars; every checked-in artifact needs a perf-trajectory bar", f)
			continue
		}
		// A registered artifact that is unreadable, malformed or hollow
		// fails its own loud check and the loop keeps going, so one bad
		// file reports every problem instead of masking the others.
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Errorf("%s: unreadable: %v; regenerate it with scripts/bench_json.sh", f, err)
			continue
		}
		var a benchArtifact
		if err := json.Unmarshal(raw, &a); err != nil {
			t.Errorf("%s: malformed JSON: %v; regenerate it with scripts/bench_json.sh", f, err)
			continue
		}
		if len(a.Benchmarks) == 0 {
			t.Errorf("%s: no benchmarks recorded; regenerate it with scripts/bench_json.sh", f)
			continue
		}
		for name, metrics := range a.Benchmarks {
			if metrics["admissions_per_sec"] <= 0 {
				t.Errorf("%s: benchmark %q lacks a positive admissions_per_sec; the artifact is truncated or hand-edited", f, name)
			}
		}
		arts[f] = &a
	}
	for _, bar := range benchBars {
		a, ok := arts[bar.file]
		if !ok {
			t.Errorf("%s: artifact missing; regenerate it with scripts/bench_json.sh", bar.file)
			continue
		}
		got, desc, err := bar.lookup(a)
		if err != nil {
			t.Errorf("%s: %v", bar.file, err)
			continue
		}
		if got < bar.min {
			t.Errorf("%s: %s regressed to %.3fx, below the %.1fx bar (%s)",
				bar.file, desc, got, bar.min, a.Pair)
		} else {
			t.Logf("%s: %s at %.3fx (bar %.1fx)", bar.file, desc, got, bar.min)
		}
	}
}

// lookup resolves the bar's speedup value inside the artifact.
func (b benchBar) lookup(a *benchArtifact) (float64, string, error) {
	if b.key == "" {
		if a.Speedup == 0 {
			return 0, "", fmt.Errorf("missing speedup_admissions_per_sec")
		}
		return a.Speedup, "speedup_admissions_per_sec", nil
	}
	v, ok := a.Speedups[b.key]
	if !ok {
		return 0, "", fmt.Errorf("missing %q in speedups_admissions_per_sec", b.key)
	}
	if _, ok := a.Benchmarks[b.key]; !ok {
		return 0, "", fmt.Errorf("speedup for %q has no matching benchmarks entry", b.key)
	}
	return v, b.key + " vs " + a.Baseline, nil
}
