package rtsm

import (
	"testing"
	"time"

	"rtsm/internal/churn"
	"rtsm/internal/model"
)

// The priority benchmarks measure what preemption buys a latency-critical
// arrival on a loaded platform. Both run the identical -priomix churn
// workload — a 70:20:10 best-effort/standard/critical arrival mix kept
// resident-heavy enough that the mesh saturates and rejections occur —
// and differ only in whether the manager's preemption planner is on.
// Compare the pair (CI uploads it as the priority on/off artifact) to
// read off the critical class's admission-rate lift and latency cost:
// preemption trades extra mapping work on the rejection path (the
// hypothetical eviction probes and victim relocations) for a strictly
// higher critical admission rate; relocations keep the displaced
// best-effort work running. TestPreemptionRaisesCriticalAdmissionRate
// pins the "strictly higher" claim deterministically; the benchmarks
// quantify it.
func benchmarkAdmissionPriority(b *testing.B, preempt bool) {
	opts := churn.Options{
		Workers:   4,
		Apps:      200,
		Mesh:      8,
		Seed:      123,
		Catalogue: 64,
		MaxUtil:   0.30, // load the mesh enough that admissions fail
		PeriodNs:  40_000,
		Resident:  32, // heavy resident population: sustained pressure
		Reuse:     true,
		Repair:    true,
		PrioMix:   "70:20:10",
		Preempt:   preempt,
		Retries:   3,
	}
	b.ResetTimer()
	var admitted, rejected uint64
	var latency time.Duration
	var preemptions, relocations uint64
	for i := 0; i < b.N; i++ {
		r := churn.Run(opts)
		if r.ConfigErr != nil {
			b.Fatal(r.ConfigErr)
		}
		if r.LedgerErr != nil {
			b.Fatalf("ledger corrupted: %v", r.LedgerErr)
		}
		c := r.Stats.ByClass[model.Critical]
		admitted += c.Admitted
		rejected += c.Rejected
		latency += c.Latency
		preemptions += r.Stats.Preemptions
		relocations += r.Stats.Relocations
	}
	b.StopTimer()
	total := admitted + rejected
	if total == 0 {
		b.Fatal("no critical arrivals; workload broken")
	}
	b.ReportMetric(100*float64(admitted)/float64(total), "%crit-admitted")
	b.ReportMetric(float64(latency.Microseconds())/float64(total), "crit-µs/arrival")
	b.ReportMetric(float64(preemptions)/float64(b.N), "preempted/run")
	if preemptions > 0 {
		b.ReportMetric(100*float64(relocations)/float64(preemptions), "%relocated")
	}
}

// BenchmarkAdmissionPriorityPreempt runs the mixed-class churn with the
// preemption planner on: full-mesh critical arrivals displace
// minimal-cost best-effort victims and relocate them when possible.
func BenchmarkAdmissionPriorityPreempt(b *testing.B) {
	benchmarkAdmissionPriority(b, true)
}

// BenchmarkAdmissionPriorityNoPreempt is the ablation: the identical
// workload with preemption off — the priority queue still orders
// arrivals, but a full mesh rejects critical work like any other.
func BenchmarkAdmissionPriorityNoPreempt(b *testing.B) {
	benchmarkAdmissionPriority(b, false)
}
